//! Dependency-free parallel fan-out for the experiment binaries.
//!
//! Every experiment is a grid of independent cells (unit × machine ×
//! scheduler), each of which runs a full convergent schedule — easily
//! seconds of work on the larger sweeps. [`run_cells`] fans a list of
//! such cells out over [`std::thread::scope`] worker threads and
//! returns the results **in input order**, so an experiment's output
//! is byte-identical whether it ran on one thread or sixteen: the
//! cells themselves are deterministic (fixed seeds, no shared mutable
//! state) and the ordering is restored by slot, not by completion.
//!
//! The schedulers are *not* shared across threads (a
//! [`convergent_core::PreferenceMap`] is `Send` but not `Sync`, and a
//! pass sequence holds `Box<dyn Pass>`): each cell closure constructs
//! its own scheduler from plain configuration, which is also what
//! keeps the per-cell work deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped by the number of jobs.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Parses a `--jobs N` argument out of `args` (mutating it) and
/// returns the requested worker count, `default` if absent.
///
/// # Panics
///
/// Panics with a usage message if `--jobs` is present without a valid
/// positive integer.
pub fn jobs_from_args(args: &mut Vec<String>, default: usize) -> usize {
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("--jobs requires a positive integer"));
        args.drain(pos..=pos + 1);
        value
    } else {
        default
    }
}

/// Runs `f` over `0..n_cells` on up to `jobs` worker threads and
/// returns the results in index order.
///
/// `f` must be a pure function of its index (up to benign
/// non-determinism like wall-clock timing embedded in the result):
/// cells are claimed by an atomic counter, so *which thread* runs a
/// cell is scheduling-dependent, but the returned `Vec` is always
/// `[f(0), f(1), …, f(n_cells-1)]`.
///
/// With `jobs <= 1` or fewer than two cells the closure runs inline on
/// the caller's thread — no threads, no overhead, same results.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once the scope joins.
pub fn run_indexed<T, F>(n_cells: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.min(n_cells);
    if workers <= 1 {
        return (0..n_cells).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n_cells).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n_cells {
                    break;
                }
                let result = f(k);
                *slots[k].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every cell is filled once the scope joins")
        })
        .collect()
}

/// [`run_indexed`] over an explicit list of inputs: returns
/// `[f(&cells[0]), f(&cells[1]), …]` in input order.
pub fn run_cells<C, T, F>(cells: &[C], jobs: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run_indexed(cells.len(), jobs, |k| f(&cells[k]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let cells: Vec<usize> = (0..100).collect();
        let out = run_cells(&cells, 8, |&c| c * 3);
        assert_eq!(out, (0..100).map(|c| c * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        // The determinism contract: any job count gives the serial
        // answer, element for element.
        let serial = run_indexed(37, 1, |k| (k, k * k + 7));
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run_indexed(37, jobs, |k| (k, k * k + 7)), serial);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(run_indexed(0, 8, |k| k), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |k| k + 1), vec![1]);
    }

    #[test]
    fn jobs_arg_parsing() {
        let mut args = vec!["--tiles".to_string(), "8".to_string()];
        assert_eq!(jobs_from_args(&mut args, 4), 4);
        assert_eq!(args.len(), 2);
        let mut args = vec![
            "--jobs".to_string(),
            "3".to_string(),
            "--tiles".to_string(),
            "8".to_string(),
        ];
        assert_eq!(jobs_from_args(&mut args, 4), 3);
        assert_eq!(args, vec!["--tiles".to_string(), "8".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--jobs requires a positive integer")]
    fn bad_jobs_arg_panics() {
        let mut args = vec!["--jobs".to_string(), "zero".to_string()];
        jobs_from_args(&mut args, 4);
    }

    #[test]
    fn work_heavier_than_threads_still_completes() {
        // More cells than workers exercises the work-stealing loop.
        let out = run_indexed(1000, 4, |k| k % 7);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(k, &v)| v == k % 7));
    }
}
