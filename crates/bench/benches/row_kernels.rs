//! Criterion microbenchmarks of the bulk row kernels against the
//! per-cell loops they replaced, on both map layouts and both band
//! regimes:
//!
//! * **narrow** — every instruction windowed to an 8-slot slack band,
//!   the common post-INITTIME shape;
//! * **full** — no windowing, every band spanning all `n_slots`, the
//!   regime where one bulk call amortizes the most per-cell overhead.
//!
//! Covered kernels: `noise_fill` (vs the per-cell `add` loop),
//! `scale_clusters_row` (vs the per-cluster `scale_cluster` calls),
//! `axpy_row` (vs the per-cell `add` loop), and `scale_row` (vs the
//! per-cell `scale` loop). The bulk and per-cell forms are bit-exact
//! (see `crates/core/tests/row_kernels.rs`); these benches exist to
//! show what the batching buys, cell for cell.

use convergent_core::PreferenceMap;
use convergent_ir::{ClusterId, InstrId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: usize = 500;
const CLUSTERS: usize = 4;
const SLOTS: usize = 512;
const BAND: u32 = 8;

/// A map in the requested layout, optionally windowed to narrow
/// bands, with every row densified so banded rows carry real band
/// storage rather than the uniform closed form.
fn prepared(dense: bool, narrow: bool) -> PreferenceMap {
    let mut w = if dense {
        PreferenceMap::new_dense(N, CLUSTERS, SLOTS)
    } else {
        PreferenceMap::new(N, CLUSTERS, SLOTS)
    };
    for i in 0..N {
        let id = InstrId::new(i as u32);
        if narrow {
            let lo = (i as u32 * 7) % (SLOTS as u32 - BAND);
            w.set_window(id, lo, lo + BAND - 1);
        }
        w.scale_cluster(id, ClusterId::new((i % CLUSTERS) as u16), 2.0);
    }
    w.normalize_all();
    w
}

/// Deterministic unit-interval values standing in for noise draws.
fn unit_values(count: usize) -> Vec<f64> {
    let mut state = 0x5EEDu64;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        })
        .collect()
}

fn bench_row_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_kernels");
    let draws = unit_values(CLUSTERS * SLOTS);
    let skew = [1.1, 0.9, 1.05, 0.95];
    for (layout, dense) in [("banded", false), ("dense", true)] {
        for (regime, narrow) in [("narrow", true), ("full", false)] {
            let label = format!("{layout}/{regime}");

            group.bench_function(BenchmarkId::new("noise_fill/bulk", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    for i in 0..N {
                        let id = InstrId::new(i as u32);
                        let (lo, hi) = w.window(id);
                        let cells = CLUSTERS * (hi - lo + 1) as usize;
                        w.noise_fill(id, black_box(0.5), &draws[..cells]);
                    }
                    black_box(&w);
                });
            });
            group.bench_function(BenchmarkId::new("noise_fill/per_cell", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    for i in 0..N {
                        let id = InstrId::new(i as u32);
                        let (lo, hi) = w.window(id);
                        let mut k = 0usize;
                        for cl in 0..CLUSTERS {
                            let cid = ClusterId::new(cl as u16);
                            for t in lo..=hi {
                                w.add(id, cid, t, black_box(0.5) * draws[k]);
                                k += 1;
                            }
                        }
                    }
                    black_box(&w);
                });
            });

            group.bench_function(BenchmarkId::new("scale_clusters_row/bulk", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    for i in 0..N {
                        w.scale_clusters_row(InstrId::new(i as u32), black_box(&skew));
                    }
                    black_box(&w);
                });
            });
            group.bench_function(
                BenchmarkId::new("scale_clusters_row/per_cluster", &label),
                |b| {
                    let mut w = prepared(dense, narrow);
                    b.iter(|| {
                        for i in 0..N {
                            let id = InstrId::new(i as u32);
                            for (cl, &f) in skew.iter().enumerate() {
                                w.scale_cluster(id, ClusterId::new(cl as u16), black_box(f));
                            }
                        }
                        black_box(&w);
                    });
                },
            );

            group.bench_function(BenchmarkId::new("axpy_row/bulk", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    for i in 0..N {
                        let id = InstrId::new(i as u32);
                        let (lo, hi) = w.window(id);
                        let span = (hi - lo + 1) as usize;
                        w.axpy_row(id, ClusterId::new(0), lo, black_box(0.01), &draws[..span]);
                    }
                    black_box(&w);
                });
            });
            group.bench_function(BenchmarkId::new("axpy_row/per_cell", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    for i in 0..N {
                        let id = InstrId::new(i as u32);
                        let (lo, hi) = w.window(id);
                        for (k, t) in (lo..=hi).enumerate() {
                            w.add(id, ClusterId::new(0), t, black_box(0.01) * draws[k]);
                        }
                    }
                    black_box(&w);
                });
            });

            group.bench_function(BenchmarkId::new("scale_row/bulk", &label), |b| {
                let mut w = prepared(dense, narrow);
                let factors = vec![1.001; SLOTS];
                b.iter(|| {
                    for i in 0..N {
                        let id = InstrId::new(i as u32);
                        let (lo, hi) = w.window(id);
                        let span = (hi - lo + 1) as usize;
                        w.scale_row(id, ClusterId::new(1), lo, black_box(&factors[..span]));
                    }
                    black_box(&w);
                });
            });
            group.bench_function(BenchmarkId::new("scale_row/per_cell", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    for i in 0..N {
                        let id = InstrId::new(i as u32);
                        let (lo, hi) = w.window(id);
                        for t in lo..=hi {
                            w.scale(id, ClusterId::new(1), t, black_box(1.001));
                        }
                    }
                    black_box(&w);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_row_kernels);
criterion_main!(benches);
