//! Write your own convergent-scheduling heuristic.
//!
//! The paper's pitch is that the preference-map interface makes new
//! constraints easy to add: "if, for example, an architecture is able
//! to exploit auto-increment on memory-access with a specific
//! instruction, one pass could try to keep together memory-accesses
//! and increments." This example implements exactly that pass and
//! composes it with the stock sequence.
//!
//! ```text
//! cargo run --example custom_pass
//! ```

use convergent_scheduling::core::passes::{Comm, InitTime, LoadBalance, Place, PlaceProp};
use convergent_scheduling::core::Sequence;
use convergent_scheduling::prelude::*;

/// Pulls every integer-ALU instruction toward the cluster of the
/// memory operations it feeds, so address increments land next to the
/// accesses that would fuse with them.
struct KeepIncrementsWithMemory {
    factor: f64,
}

impl Pass for KeepIncrementsWithMemory {
    fn name(&self) -> &'static str {
        "KEEP-INCR"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        for i in ctx.dag.ids() {
            if ctx.dag.instr(i).class() != OpClass::IntAlu {
                continue;
            }
            for &succ in ctx.dag.succs(i) {
                if !ctx.dag.instr(succ).opcode().is_memory() {
                    continue;
                }
                // Pull the increment toward the access's current
                // preference — a soft vote, like every other pass.
                let target = ctx.weights.preferred_cluster(succ);
                if ctx.weights.cluster_feasible(i, target) {
                    ctx.weights.scale_cluster(i, target, self.factor);
                }
            }
        }
    }

    // Optional but worth the five lines: a summary of the update shape
    // lets `csched analyze` (and `verify_pass`) prove the contract
    // clauses statically instead of falling back to recorded probe
    // runs. Each vote multiplies one cluster column by `factor`
    // (possibly several times), which is a per-cluster scale with a
    // positive factor — and since it targets a specific cluster it can
    // pull symmetric ties apart.
    fn effect(&self) -> PassEffect {
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::new(1.0_f64.min(self.factor), f64::MAX),
        }])
        .breaks_symmetry()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An address-increment idiom: add feeds a banked store, twice.
    let mut b = DagBuilder::new();
    let base = b.instr(Opcode::Load);
    let inc1 = b.instr(Opcode::IntAlu);
    let st1 = b.preplaced_instr(Opcode::Store, ClusterId::new(2));
    let inc2 = b.instr(Opcode::IntAlu);
    let st2 = b.preplaced_instr(Opcode::Store, ClusterId::new(3));
    b.edge(base, inc1)?;
    b.edge(inc1, st1)?;
    b.edge(inc1, inc2)?;
    b.edge(inc2, st2)?;
    let dag = b.build()?;
    let machine = Machine::raw(4);

    // Compose the custom pass with stock heuristics. Order and
    // repetition are free choices — that's the framework.
    let sequence = Sequence::new()
        .with(InitTime::new())
        .with(Place::new())
        .with(PlaceProp::new())
        .with(KeepIncrementsWithMemory { factor: 4.0 })
        .with(Comm::new())
        .with(LoadBalance::new());
    let outcome = ConvergentScheduler::new(sequence).schedule(&dag, &machine)?;
    validate(&dag, &machine, outcome.schedule())?;

    for i in dag.ids() {
        println!(
            "  {i}: {:<12} -> {}",
            dag.instr(i).to_string(),
            outcome.assignment().cluster(i)
        );
    }
    // Each increment sits with its store.
    assert_eq!(
        outcome.assignment().cluster(inc1),
        outcome.assignment().cluster(st1)
    );
    assert_eq!(
        outcome.assignment().cluster(inc2),
        outcome.assignment().cluster(st2)
    );
    println!("increments share their stores' clusters ✓");
    Ok(())
}
