//! Graphviz DOT export for dependence graphs.
//!
//! Useful for eyeballing reconstructed workloads against the paper's
//! Figure 2 and for debugging pass behaviour. Preplaced instructions are
//! drawn as triangles (matching Figure 4's convention) and colored by
//! home cluster.

use std::fmt::Write as _;

use crate::Dag;

/// Renders `dag` as a Graphviz DOT digraph.
///
/// # Example
///
/// ```
/// use convergent_ir::{DagBuilder, Opcode, to_dot};
/// # fn main() -> Result<(), convergent_ir::IrError> {
/// let mut b = DagBuilder::new();
/// let a = b.instr(Opcode::Load);
/// let c = b.instr(Opcode::IntAlu);
/// b.edge(a, c)?;
/// let dot = to_dot(&b.build()?, "example");
/// assert!(dot.starts_with("digraph"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(dag: &Dag, name: &str) -> String {
    const PALETTE: [&str; 8] = [
        "#e6f2ff", "#ffe6e6", "#e6ffe6", "#fff2cc", "#f2e6ff", "#e6ffff", "#ffe6f7", "#f5f5dc",
    ];
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", name.replace('"', "'"));
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for i in dag.ids() {
        let instr = dag.instr(i);
        let label = match instr.name() {
            Some(n) => format!("{i}: {} {}", instr.opcode(), n),
            None => format!("{i}: {}", instr.opcode()),
        };
        match instr.preplacement() {
            Some(c) => {
                let fill = PALETTE[c.index() % PALETTE.len()];
                let _ = writeln!(
                    out,
                    "  {} [label=\"{label}\\n@{c}\", shape=triangle, style=filled, fillcolor=\"{fill}\"];",
                    i.index()
                );
            }
            None => {
                let _ = writeln!(out, "  {} [label=\"{label}\", shape=box];", i.index());
            }
        }
    }
    for e in dag.edges() {
        let _ = writeln!(out, "  {} -> {};", e.src.index(), e.dst.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterId, DagBuilder, Opcode};

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = DagBuilder::new();
        let a = b.preplaced_instr(Opcode::Load, ClusterId::new(2));
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        let dot = to_dot(&b.build().unwrap(), "t");
        assert!(dot.contains("digraph \"t\""));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("triangle")); // preplaced marker
        assert!(dot.contains("@c2"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_in_names_are_sanitized() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dot = to_dot(&b.build().unwrap(), "a\"b");
        assert!(dot.contains("digraph \"a'b\""));
    }
}
