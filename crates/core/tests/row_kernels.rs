//! Differential property tests for the bulk row kernels.
//!
//! Every bulk operation on the preference map documents itself as
//! *bit-exact* with a loop of per-cell (or per-cluster) primitives:
//! `add_row` with `add`, `scale_row` with `scale`, `noise_fill` with
//! the historical per-cell NOISE loop, `scale_clusters_row` with the
//! per-cluster `scale_cluster` calls, and the fused `comm_row` /
//! `noise_fill_rows` trait methods with their decompositions. This
//! test drives random op sequences through four maps at once —
//!
//! * banded layout, bulk calls (through [`PreferenceMap::rows_mut`]
//!   views, the exact path the parallel driver uses),
//! * banded layout, per-cell reference loops,
//! * dense reference layout, bulk calls,
//! * dense reference layout, per-cell reference loops,
//!
//! — and asserts all four agree bit for bit on every observable,
//! including the `cluster_marginals_into` / `feasible_cells_into`
//! prologue sweeps. A bulk kernel that reorders a floating-point
//! accumulation, skips an argmax-cache update, or mishandles a band
//! edge diverges here.
//!
//! These also run under `cargo miri test` (the `--miri` path of
//! `scripts/offline-check.sh`) to catch undefined behaviour in the
//! slice-splitting hot paths; case counts shrink under miri to keep
//! that tractable.

use convergent_core::{PreferenceMap, RowOps};
use convergent_ir::{ClusterId, InstrId};
use proptest::prelude::*;

const N: usize = 4;
const C: usize = 3;
const T: usize = 8;

const CASES: u32 = if cfg!(miri) { 8 } else { 64 };

/// One op of the differential vocabulary. Shape ops (`SetWindow`,
/// `Forbid`, `Set`, `Normalize`, …) mutate all four maps identically;
/// the `*Row`/`Fill` ops are applied as a bulk call on two maps and as
/// the documented per-cell decomposition on the other two.
#[derive(Clone, Debug)]
enum Op {
    Set {
        i: usize,
        c: usize,
        t: usize,
        v: f64,
    },
    SetWindow {
        i: usize,
        lo: usize,
        len: usize,
    },
    Forbid {
        i: usize,
        c: usize,
    },
    Normalize {
        i: usize,
    },
    NormalizeAll,
    Materialize {
        i: usize,
    },
    AddRow {
        i: usize,
        c: usize,
        lo: usize,
        xs: Vec<f64>,
    },
    AxpyRow {
        i: usize,
        c: usize,
        lo: usize,
        a: f64,
        xs: Vec<f64>,
    },
    ScaleRow {
        i: usize,
        c: usize,
        lo: usize,
        fs: Vec<f64>,
    },
    ScaleClustersRow {
        i: usize,
        fs: Vec<f64>,
    },
    CommRow {
        i: usize,
        fs: Vec<f64>,
        reinforce: bool,
    },
    ReinforcePreferred {
        i: usize,
        f: f64,
    },
    NoiseFill {
        i: usize,
        amplitude: f64,
        seed: u64,
    },
    NoiseFillRows {
        amplitude: f64,
        seed: u64,
        chunks: usize,
    },
}

/// A `(lo, values)` span fitting inside `0..T`: generated at full
/// length and truncated to the room left after `lo` (always ≥ 1).
fn span_strategy(range: std::ops::Range<f64>) -> impl Strategy<Value = (usize, Vec<f64>)> {
    (0..T, proptest::collection::vec(range, 1..=T)).prop_map(|(lo, mut xs)| {
        xs.truncate(T - lo);
        (lo, xs)
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N, 0..C, 0..T, 0.0f64..2.0).prop_map(|(i, c, t, v)| Op::Set { i, c, t, v }),
        (0..N, 0..T, 0..T).prop_map(|(i, lo, len)| Op::SetWindow { i, lo, len }),
        (0..N, 0..C).prop_map(|(i, c)| Op::Forbid { i, c }),
        (0..N).prop_map(|i| Op::Normalize { i }),
        (0..N).prop_map(|_| Op::NormalizeAll),
        (0..N).prop_map(|i| Op::Materialize { i }),
        (0..N, 0..C, span_strategy(-1.0f64..1.0)).prop_map(|(i, c, (lo, xs))| Op::AddRow {
            i,
            c,
            lo,
            xs
        }),
        (0..N, 0..C, -2.0f64..2.0, span_strategy(-1.0f64..1.0))
            .prop_map(|(i, c, a, (lo, xs))| Op::AxpyRow { i, c, lo, a, xs }),
        (0..N, 0..C, span_strategy(0.0f64..5.0)).prop_map(|(i, c, (lo, fs))| Op::ScaleRow {
            i,
            c,
            lo,
            fs
        }),
        (0..N, proptest::collection::vec(0.0f64..5.0, C))
            .prop_map(|(i, fs)| Op::ScaleClustersRow { i, fs }),
        (
            0..N,
            proptest::collection::vec(0.0f64..5.0, C),
            any::<bool>()
        )
            .prop_map(|(i, fs, reinforce)| Op::CommRow { i, fs, reinforce }),
        (0..N, 0.5f64..4.0).prop_map(|(i, f)| Op::ReinforcePreferred { i, f }),
        (0..N, 0.0f64..2.0, any::<u64>()).prop_map(|(i, amplitude, seed)| Op::NoiseFill {
            i,
            amplitude,
            seed
        }),
        (0.0f64..2.0, any::<u64>(), 1..4usize).prop_map(|(amplitude, seed, chunks)| {
            Op::NoiseFillRows {
                amplitude,
                seed,
                chunks,
            }
        }),
    ]
}

/// Deterministic `[0, 1)` stream for noise draws: the draws must be
/// identical across the four maps but their *count* depends on the
/// map's current window/feasibility state, so they cannot come from
/// the proptest strategy directly.
fn draws(seed: u64, count: usize) -> Vec<f64> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        })
        .collect()
}

/// `i`'s noise-draw count in `w`'s current state (the per-cell loop's
/// `feasible_clusters × window_width`).
fn noise_cells(w: &PreferenceMap, i: InstrId) -> usize {
    let (lo, hi) = w.window(i);
    let feasible = (0..C)
        .filter(|&c| w.cluster_feasible(i, ClusterId::new(c as u16)))
        .count();
    feasible * (hi - lo + 1) as usize
}

/// Applies the bulk form of `op` through `rows_mut` views — the same
/// disjoint-chunk path the parallel pass driver drives — so the
/// `WeightRows` overrides are what's under test, not just the
/// map-level forwarding.
fn apply_bulk(w: &mut PreferenceMap, op: &Op) {
    let route = |w: &mut PreferenceMap, i: usize, f: &mut dyn FnMut(&mut dyn RowOps, InstrId)| {
        let id = InstrId::new(i as u32);
        let mut views = w.rows_mut(2);
        let v = views
            .iter_mut()
            .find(|v| v.instr_range().contains(&(i as u32)))
            .expect("chunks cover all rows");
        f(v, id);
    };
    match *op {
        Op::AddRow { i, c, lo, ref xs } => route(w, i, &mut |v, id| {
            v.add_row(id, ClusterId::new(c as u16), lo as u32, xs);
        }),
        Op::AxpyRow {
            i,
            c,
            lo,
            a,
            ref xs,
        } => route(w, i, &mut |v, id| {
            v.axpy_row(id, ClusterId::new(c as u16), lo as u32, a, xs);
        }),
        Op::ScaleRow { i, c, lo, ref fs } => route(w, i, &mut |v, id| {
            v.scale_row(id, ClusterId::new(c as u16), lo as u32, fs);
        }),
        Op::ScaleClustersRow { i, ref fs } => route(w, i, &mut |v, id| {
            v.scale_clusters_row(id, fs);
        }),
        Op::CommRow {
            i,
            ref fs,
            reinforce,
        } => route(w, i, &mut |v, id| {
            v.comm_row(id, fs, reinforce.then_some(2.0));
        }),
        Op::ReinforcePreferred { i, f } => route(w, i, &mut |v, id| {
            v.reinforce_preferred(id, f);
        }),
        Op::NoiseFill { i, amplitude, seed } => {
            let id = InstrId::new(i as u32);
            let d = draws(seed, noise_cells(w, id));
            route(w, i, &mut |v, id| v.noise_fill(id, amplitude, &d));
        }
        Op::NoiseFillRows {
            amplitude,
            seed,
            chunks,
        } => {
            let mut idx = Vec::new();
            w.feasible_cells_into(&mut idx);
            let d = draws(seed, *idx.last().unwrap());
            for v in &mut w.rows_mut(chunks) {
                v.noise_fill_rows(amplitude, &d, &idx);
            }
        }
        _ => apply_shape(w, op),
    }
}

/// Applies `op` as the documented per-cell / per-cluster reference
/// loop, using only the primitive mutators.
fn apply_reference(w: &mut PreferenceMap, op: &Op) {
    match *op {
        Op::AddRow { i, c, lo, ref xs } => {
            let (id, cid) = (InstrId::new(i as u32), ClusterId::new(c as u16));
            for (k, &x) in xs.iter().enumerate() {
                w.add(id, cid, (lo + k) as u32, x);
            }
        }
        Op::AxpyRow {
            i,
            c,
            lo,
            a,
            ref xs,
        } => {
            let (id, cid) = (InstrId::new(i as u32), ClusterId::new(c as u16));
            for (k, &x) in xs.iter().enumerate() {
                w.add(id, cid, (lo + k) as u32, a * x);
            }
        }
        Op::ScaleRow { i, c, lo, ref fs } => {
            let (id, cid) = (InstrId::new(i as u32), ClusterId::new(c as u16));
            for (k, &f) in fs.iter().enumerate() {
                w.scale(id, cid, (lo + k) as u32, f);
            }
        }
        Op::ScaleClustersRow { i, ref fs } => {
            let id = InstrId::new(i as u32);
            for (c, &f) in fs.iter().enumerate() {
                w.scale_cluster(id, ClusterId::new(c as u16), f);
            }
        }
        Op::CommRow {
            i,
            ref fs,
            reinforce,
        } => {
            let id = InstrId::new(i as u32);
            for (c, &f) in fs.iter().enumerate() {
                w.scale_cluster(id, ClusterId::new(c as u16), f);
            }
            if reinforce {
                let c = w.preferred_cluster(id);
                let t = w.preferred_time(id);
                w.scale(id, c, t.get(), 2.0);
            }
        }
        Op::ReinforcePreferred { i, f } => {
            let id = InstrId::new(i as u32);
            let c = w.preferred_cluster(id);
            let t = w.preferred_time(id);
            w.scale(id, c, t.get(), f);
        }
        Op::NoiseFill { i, amplitude, seed } => {
            let id = InstrId::new(i as u32);
            let d = draws(seed, noise_cells(w, id));
            let (lo, hi) = w.window(id);
            let mut k = 0usize;
            for c in 0..C {
                let cid = ClusterId::new(c as u16);
                if !w.cluster_feasible(id, cid) {
                    continue;
                }
                for t in lo..=hi {
                    w.add(id, cid, t, amplitude * d[k]);
                    k += 1;
                }
            }
            assert_eq!(k, d.len(), "one draw per feasible cell");
        }
        Op::NoiseFillRows {
            amplitude, seed, ..
        } => {
            let mut idx = Vec::new();
            w.feasible_cells_into(&mut idx);
            let d = draws(seed, *idx.last().unwrap());
            for i in 0..N {
                let id = InstrId::new(i as u32);
                let slice = &d[idx[i]..idx[i + 1]];
                let (lo, hi) = w.window(id);
                let mut k = 0usize;
                for c in 0..C {
                    let cid = ClusterId::new(c as u16);
                    if !w.cluster_feasible(id, cid) {
                        continue;
                    }
                    for t in lo..=hi {
                        w.add(id, cid, t, amplitude * slice[k]);
                        k += 1;
                    }
                }
            }
        }
        _ => apply_shape(w, op),
    }
}

/// Shape ops shared verbatim by the bulk and reference sides.
fn apply_shape(w: &mut PreferenceMap, op: &Op) {
    match *op {
        Op::Set { i, c, t, v } => w.set(
            InstrId::new(i as u32),
            ClusterId::new(c as u16),
            t as u32,
            v,
        ),
        Op::SetWindow { i, lo, len } => {
            let id = InstrId::new(i as u32);
            let lo = lo as u32;
            let hi = (lo + len as u32).min(T as u32 - 1);
            let (cur_lo, cur_hi) = w.window(id);
            if lo.max(cur_lo) <= hi.min(cur_hi) {
                w.set_window(id, lo, hi);
            }
        }
        Op::Forbid { i, c } => w.forbid_cluster(InstrId::new(i as u32), ClusterId::new(c as u16)),
        Op::Normalize { i } => w.normalize(InstrId::new(i as u32)),
        Op::NormalizeAll => w.normalize_all(),
        Op::Materialize { i } => w.materialize(InstrId::new(i as u32)),
        _ => unreachable!("bulk op routed to apply_shape"),
    }
}

/// Bitwise comparison of every observable quantity of two maps.
fn assert_identical(label: &str, a: &PreferenceMap, b: &PreferenceMap) {
    for i in 0..N {
        let id = InstrId::new(i as u32);
        assert_eq!(a.window(id), b.window(id), "{label}: window[{i}]");
        for c in 0..C {
            let cid = ClusterId::new(c as u16);
            assert_eq!(
                a.cluster_feasible(id, cid),
                b.cluster_feasible(id, cid),
                "{label}: feasible[{i},{c}]"
            );
            for t in 0..T {
                assert_eq!(
                    a.get(id, cid, t as u32).to_bits(),
                    b.get(id, cid, t as u32).to_bits(),
                    "{label}: W[{i},{c},{t}]"
                );
            }
            assert_eq!(
                a.cluster_weight(id, cid).to_bits(),
                b.cluster_weight(id, cid).to_bits(),
                "{label}: cluster_weight[{i},{c}]"
            );
        }
        for t in 0..T {
            assert_eq!(
                a.time_weight(id, t as u32).to_bits(),
                b.time_weight(id, t as u32).to_bits(),
                "{label}: time_weight[{i},{t}]"
            );
        }
        assert_eq!(
            a.total(id).to_bits(),
            b.total(id).to_bits(),
            "{label}: total[{i}]"
        );
        assert_eq!(
            a.preferred_cluster(id),
            b.preferred_cluster(id),
            "{label}: preferred_cluster[{i}]"
        );
        assert_eq!(
            a.preferred_time(id),
            b.preferred_time(id),
            "{label}: preferred_time[{i}]"
        );
    }
    // The pass-prologue sweeps must agree with the per-cell reads too.
    let mut ma = vec![0.0; N * C];
    let mut mb = vec![0.0; N * C];
    a.cluster_marginals_into(&mut ma);
    b.cluster_marginals_into(&mut mb);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&ma), bits(&mb), "{label}: cluster_marginals_into");
    let mut ia = Vec::new();
    let mut ib = Vec::new();
    a.feasible_cells_into(&mut ia);
    b.feasible_cells_into(&mut ib);
    assert_eq!(ia, ib, "{label}: feasible_cells_into");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// The headline claim: bulk row kernels are bit-exact with the
    /// per-cell loops, on both layouts, and the banded layout is
    /// bit-exact with the dense reference throughout.
    #[test]
    fn bulk_matches_per_cell_on_both_layouts(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let mut banded_bulk = PreferenceMap::new(N, C, T);
        let mut banded_ref = PreferenceMap::new(N, C, T);
        let mut dense_bulk = PreferenceMap::new_dense(N, C, T);
        let mut dense_ref = PreferenceMap::new_dense(N, C, T);
        for op in &ops {
            apply_bulk(&mut banded_bulk, op);
            apply_reference(&mut banded_ref, op);
            apply_bulk(&mut dense_bulk, op);
            apply_reference(&mut dense_ref, op);
        }
        assert_identical("banded bulk vs banded per-cell", &banded_bulk, &banded_ref);
        assert_identical("dense bulk vs dense per-cell", &dense_bulk, &dense_ref);
        assert_identical("banded bulk vs dense per-cell", &banded_bulk, &dense_ref);
        // The invariant checker expects a normalized map.
        banded_bulk.normalize_all();
        dense_bulk.normalize_all();
        banded_bulk.assert_invariants(1e-7);
        dense_bulk.assert_invariants(1e-7);
    }
}
