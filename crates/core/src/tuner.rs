//! Systematic heuristic selection — the paper's stated future work.
//!
//! "Currently, the following parameters are selected by trial-and-
//! error: the set of heuristics we use, the weights used in the
//! heuristics, and the order in which the heuristics are run. We
//! expect to implement more systematic heuristics selection in the
//! future." (Section 4.) The related-work section points at Cooper's
//! genetic-algorithm pass-ordering search as the model.
//!
//! This module implements that future work as a seeded stochastic
//! hill-climber over *sequence specifications*: a [`PassSpec`] is a
//! cloneable, enumerable description of one pass; a candidate sequence
//! is mutated (swap / insert / remove / duplicate) and kept whenever
//! the caller's objective improves. The caller supplies the objective
//! — typically total executed cycles over a training set of workloads
//! — so the tuner is architecture- and metric-agnostic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::passes::{
    Comm, EmphCp, First, InitTime, LevelDistribute, LoadBalance, Noise, Path, PathProp, Place,
    PlaceProp, RegPressure,
};
use crate::{Pass, Sequence};

/// A cloneable specification of one pass (default parameters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PassSpec {
    /// [`InitTime`].
    InitTime,
    /// [`Noise`].
    Noise,
    /// [`First`].
    First,
    /// [`Path`].
    Path,
    /// [`Comm`].
    Comm,
    /// [`Place`].
    Place,
    /// [`PlaceProp`].
    PlaceProp,
    /// [`LoadBalance`].
    Load,
    /// [`LevelDistribute`].
    Level,
    /// [`PathProp`].
    PathProp,
    /// [`EmphCp`].
    EmphCp,
    /// [`RegPressure`].
    RegPress,
}

impl PassSpec {
    /// Every spec the tuner may insert.
    pub const ALL: [PassSpec; 12] = [
        PassSpec::InitTime,
        PassSpec::Noise,
        PassSpec::First,
        PassSpec::Path,
        PassSpec::Comm,
        PassSpec::Place,
        PassSpec::PlaceProp,
        PassSpec::Load,
        PassSpec::Level,
        PassSpec::PathProp,
        PassSpec::EmphCp,
        PassSpec::RegPress,
    ];

    /// Instantiates the pass.
    #[must_use]
    pub fn build(self) -> Box<dyn Pass> {
        match self {
            PassSpec::InitTime => Box::new(InitTime::new()),
            PassSpec::Noise => Box::new(Noise::new()),
            PassSpec::First => Box::new(First::new()),
            PassSpec::Path => Box::new(Path::new()),
            PassSpec::Comm => Box::new(Comm::new()),
            PassSpec::Place => Box::new(Place::new()),
            PassSpec::PlaceProp => Box::new(PlaceProp::new()),
            PassSpec::Load => Box::new(LoadBalance::new()),
            PassSpec::Level => Box::new(LevelDistribute::new()),
            PassSpec::PathProp => Box::new(PathProp::new()),
            PassSpec::EmphCp => Box::new(EmphCp::new()),
            PassSpec::RegPress => Box::new(RegPressure::new()),
        }
    }
}

/// Builds a runnable [`Sequence`] from specs, always anchored by an
/// initial INITTIME (feasibility is not the tuner's business).
#[must_use]
pub fn to_sequence(specs: &[PassSpec]) -> Sequence {
    let mut seq = Sequence::new().with(InitTime::new());
    for &s in specs {
        if s == PassSpec::InitTime {
            continue; // already anchored
        }
        match s {
            PassSpec::InitTime => {}
            PassSpec::Noise => seq.push(Noise::new()),
            PassSpec::First => seq.push(First::new()),
            PassSpec::Path => seq.push(Path::new()),
            PassSpec::Comm => seq.push(Comm::new()),
            PassSpec::Place => seq.push(Place::new()),
            PassSpec::PlaceProp => seq.push(PlaceProp::new()),
            PassSpec::Load => seq.push(LoadBalance::new()),
            PassSpec::Level => seq.push(LevelDistribute::new()),
            PassSpec::PathProp => seq.push(PathProp::new()),
            PassSpec::EmphCp => seq.push(EmphCp::new()),
            PassSpec::RegPress => seq.push(RegPressure::new()),
        }
    }
    seq
}

/// Tuning configuration.
#[derive(Clone, Copy, Debug)]
pub struct TunerConfig {
    /// Mutation/evaluation steps.
    pub iterations: usize,
    /// Maximum sequence length (keeps compile time bounded).
    pub max_len: usize,
    /// RNG seed (the search is deterministic per seed).
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            iterations: 60,
            max_len: 14,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The best sequence specification found.
    pub best: Vec<PassSpec>,
    /// Its objective value (lower is better).
    pub best_score: f64,
    /// The starting sequence's objective value.
    pub initial_score: f64,
    /// Number of accepted mutations.
    pub accepted: usize,
}

/// Hill-climbs pass sequences against `objective` (lower is better).
///
/// The objective is called once for the initial specification and once
/// per candidate; non-finite objective values reject the candidate.
///
/// # Panics
///
/// Panics if `config.iterations` is zero or `initial` is empty.
pub fn tune(
    initial: &[PassSpec],
    config: TunerConfig,
    mut objective: impl FnMut(&Sequence) -> f64,
) -> TuneResult {
    assert!(config.iterations > 0, "need at least one iteration");
    assert!(!initial.is_empty(), "need a starting sequence");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Vec<PassSpec> = initial.to_vec();
    let initial_score = objective(&to_sequence(&best));
    let mut best_score = initial_score;
    let mut accepted = 0usize;

    for _ in 0..config.iterations {
        let mut candidate = best.clone();
        match rng.gen_range(0..4u8) {
            // Swap two positions.
            0 if candidate.len() >= 2 => {
                let a = rng.gen_range(0..candidate.len());
                let b = rng.gen_range(0..candidate.len());
                candidate.swap(a, b);
            }
            // Insert a random pass.
            1 if candidate.len() < config.max_len => {
                let k = rng.gen_range(0..=candidate.len());
                let pass = PassSpec::ALL[rng.gen_range(0..PassSpec::ALL.len())];
                candidate.insert(k, pass);
            }
            // Remove one pass.
            2 if candidate.len() >= 2 => {
                let k = rng.gen_range(0..candidate.len());
                candidate.remove(k);
            }
            // Duplicate one pass somewhere later (iteration!).
            _ if candidate.len() < config.max_len => {
                let k = rng.gen_range(0..candidate.len());
                let at = rng.gen_range(k..=candidate.len());
                let pass = candidate[k];
                candidate.insert(at, pass);
            }
            _ => continue,
        }
        if candidate == best {
            continue;
        }
        let score = objective(&to_sequence(&candidate));
        if score.is_finite() && score < best_score {
            best = candidate;
            best_score = score;
            accepted += 1;
        }
    }
    TuneResult {
        best,
        best_score,
        initial_score,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_their_passes() {
        for spec in PassSpec::ALL {
            let pass = spec.build();
            assert!(!pass.name().is_empty());
        }
        assert_eq!(PassSpec::Comm.build().name(), "COMM");
    }

    #[test]
    fn to_sequence_anchors_inittime() {
        let seq = to_sequence(&[PassSpec::Comm, PassSpec::Load]);
        assert_eq!(seq.names(), ["INITTIME", "COMM", "LOAD"]);
        // A redundant InitTime spec is dropped.
        let seq = to_sequence(&[PassSpec::InitTime, PassSpec::Comm]);
        assert_eq!(seq.names(), ["INITTIME", "COMM"]);
    }

    #[test]
    fn tuner_minimizes_a_simple_objective() {
        // Objective: sequence length — the tuner should shrink it.
        let initial = [
            PassSpec::Comm,
            PassSpec::Load,
            PassSpec::Comm,
            PassSpec::Load,
            PassSpec::Comm,
        ];
        let result = tune(
            &initial,
            TunerConfig {
                iterations: 200,
                max_len: 10,
                seed: 1,
            },
            |seq| seq.len() as f64,
        );
        assert!(result.best_score < result.initial_score);
        assert!(result.best.len() < initial.len());
        assert!(result.accepted > 0);
    }

    #[test]
    fn tuner_is_deterministic_per_seed() {
        let initial = [PassSpec::Comm, PassSpec::Load];
        let run = |seed| {
            tune(
                &initial,
                TunerConfig {
                    iterations: 50,
                    max_len: 8,
                    seed,
                },
                |seq| {
                    // Prefer sequences ending in LOAD (arbitrary but
                    // deterministic).
                    let names = seq.names();
                    if names.last() == Some(&"LOAD") {
                        1.0
                    } else {
                        2.0
                    }
                },
            )
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_score, b.best_score);
    }

    #[test]
    fn rejected_candidates_leave_best_untouched() {
        let initial = [PassSpec::Comm];
        let result = tune(
            &initial,
            TunerConfig {
                iterations: 30,
                max_len: 4,
                seed: 3,
            },
            |_| f64::NAN, // nothing is ever acceptable
        );
        assert_eq!(result.best, vec![PassSpec::Comm]);
        assert_eq!(result.accepted, 0);
    }
}
