//! PATHPROP — path propagation.
//!
//! "This pass selects high confidence instructions and propagates
//! their convergent matrices along a path." Starting from each
//! confident instruction `ih`, the pass walks downward through
//! successors whose confidence is below `ih`'s, blending `ih`'s
//! preferences into each (`W_i ← 0.5·W_i + 0.5·W_ih`), then does the
//! same walking upward through predecessors.
//!
//! Following Section 3's note that the full three-dimensional linear
//! combination is too expensive and is only ever applied "on part of
//! the matrices, e.g., only along the space dimension", the blend here
//! combines *cluster marginals* and reshapes the target instruction's
//! map to match, preserving its own (feasibility-constrained) time
//! profile — blending raw time rows would leak weight outside the
//! walked instruction's INITTIME window.

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::{ClusterId, InstrId};

use crate::{Pass, PassContext};

/// The PATHPROP pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct PathProp {
    threshold: f64,
    target_threshold: f64,
    blend: f64,
}

impl PathProp {
    /// Creates the pass with confidence threshold 4.0 and the paper's
    /// 50/50 blend.
    ///
    /// The threshold sits above the ×3 confidence a bare PATH boost
    /// produces, so path propagation spreads *externally grounded*
    /// decisions (preplacement via PLACE/PLACEPROP, accumulated
    /// multi-pass agreement) rather than blanketing the graph with a
    /// single heuristic's guess — on preplacement-free graphs that
    /// blanketing would collapse everything onto one cluster before
    /// LEVEL ever gets to distribute parallelism.
    #[must_use]
    pub fn new() -> Self {
        PathProp {
            threshold: 4.0,
            target_threshold: 1.3,
            blend: 0.5,
        }
    }

    /// Sets the confidence threshold for selecting source
    /// instructions ("the confidence threshold t is an input
    /// parameter").
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the confidence below which an instruction counts as
    /// *undecided* and may be overwritten by a walk. The paper's only
    /// gate is `confidence(i) < confidence(ih)`, but that lets a
    /// feedback-amplified majority steamroll every mild decision made
    /// by other heuristics (exactly the irreversibility the framework
    /// exists to avoid); propagating only into near-uniform targets
    /// keeps the pass to its stated job of guiding the undecided.
    #[must_use]
    pub fn with_target_threshold(mut self, threshold: f64) -> Self {
        self.target_threshold = threshold;
        self
    }

    /// Sets the blend weight kept by the walked instruction
    /// (paper: 0.5).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= keep <= 1.0`.
    #[must_use]
    pub fn with_blend(mut self, keep: f64) -> Self {
        assert!((0.0..=1.0).contains(&keep), "blend must be in [0, 1]");
        self.blend = keep;
        self
    }
}

impl Default for PathProp {
    fn default() -> Self {
        PathProp::new()
    }
}

impl Pass for PathProp {
    fn name(&self) -> &'static str {
        "PATHPROP"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let mut sources: Vec<(InstrId, f64)> = ctx
            .dag
            .ids()
            .map(|i| (i, ctx.weights.confidence(i)))
            .filter(|&(_, conf)| conf > self.threshold)
            .collect();
        // Most confident first; walk each source down, then up.
        sources.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("confidences comparable"));
        for (ih, conf_h) in sources {
            let src_marginal = marginal(ctx, ih);
            self.walk(ctx, ih, conf_h, &src_marginal, Direction::Down);
            self.walk(ctx, ih, conf_h, &src_marginal, Direction::Up);
        }
    }

    fn effect(&self) -> PassEffect {
        // `set_cluster_marginal` reshapes a walked row to a blend of
        // two normalized marginals — an in-window absolute write of a
        // value in [0, 1] that keeps `blend`·own, so a positive cell
        // stays positive whenever the pass keeps any of the old value.
        PassEffect::new(vec![EffectOp::Absolute {
            in_window: true,
            value: Interval::unit(),
            randomized: false,
            preserves_support: self.blend > 0.0,
        }])
        .reads_windows()
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Down,
    Up,
}

fn marginal(ctx: &PassContext<'_>, i: InstrId) -> Vec<f64> {
    let tot = ctx.weights.total(i).max(f64::MIN_POSITIVE);
    (0..ctx.weights.n_clusters())
        .map(|c| ctx.weights.cluster_weight(i, ClusterId::new(c as u16)) / tot)
        .collect()
}

impl PathProp {
    fn walk(
        &self,
        ctx: &mut PassContext<'_>,
        ih: InstrId,
        conf_h: f64,
        src: &[f64],
        dir: Direction,
    ) {
        let mut cur = ih;
        loop {
            let next = {
                let step: &[InstrId] = match dir {
                    Direction::Down => ctx.dag.succs(cur),
                    Direction::Up => ctx.dag.preds(cur),
                };
                // "find i | i ∈ successor(ih), confidence(i) <
                // confidence(ih)" — we take the least confident, the
                // one most in need of guidance.
                step.iter()
                    .copied()
                    .map(|s| (s, ctx.weights.confidence(s)))
                    .filter(|&(_, conf)| conf < conf_h && conf < self.target_threshold)
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"))
                    .map(|(s, _)| s)
            };
            let Some(s) = next else { break };
            let cur_marginal = marginal(ctx, s);
            let target: Vec<f64> = cur_marginal
                .iter()
                .zip(src)
                .map(|(own, from)| self.blend * own + (1.0 - self.blend) * from)
                .collect();
            ctx.weights.set_cluster_marginal(s, &target);
            cur = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_machine::Machine;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn confidence_flows_down_a_chain() {
        let mut b = DagBuilder::new();
        let head = b.instr(Opcode::IntAlu);
        let mid = b.instr(Opcode::IntAlu);
        let tail = b.instr(Opcode::IntAlu);
        b.edge(head, mid).unwrap();
        b.edge(mid, tail).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(head, c(1), 10.0);
        rig.weights.normalize_all();
        rig.run(&PathProp::new());
        rig.weights.assert_invariants(1e-9);
        // Both downstream instructions inherit the cluster-1 lean.
        assert_eq!(rig.weights.preferred_cluster(mid), c(1));
        assert_eq!(rig.weights.preferred_cluster(tail), c(1));
        assert!(rig.weights.confidence(mid) > 1.5);
    }

    #[test]
    fn confidence_flows_up_too() {
        let mut b = DagBuilder::new();
        let top = b.instr(Opcode::IntAlu);
        let bottom = b.instr(Opcode::IntAlu);
        b.edge(top, bottom).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(bottom, c(1), 10.0);
        rig.weights.normalize_all();
        rig.run(&PathProp::new());
        assert_eq!(rig.weights.preferred_cluster(top), c(1));
    }

    #[test]
    fn equally_confident_instructions_block_the_walk() {
        // Two independently pinned instructions: neither overwrites
        // the other (the walk only visits lower-confidence nodes).
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(x, c(0), 10.0);
        rig.weights.scale_cluster(y, c(1), 10.0);
        rig.weights.normalize_all();
        rig.run(&PathProp::new());
        assert_eq!(rig.weights.preferred_cluster(x), c(0));
        assert_eq!(rig.weights.preferred_cluster(y), c(1));
    }

    #[test]
    fn no_confident_sources_is_identity() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&PathProp::new());
        assert!((rig.weights.confidence(x) - 1.0).abs() < 1e-9);
        assert!((rig.weights.confidence(y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blend_preserves_time_window() {
        // The walked instruction's INITTIME window must survive.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&crate::passes::InitTime::new());
        rig.weights.scale_cluster(x, c(1), 10.0);
        rig.weights.normalize_all();
        rig.run(&PathProp::new());
        rig.weights.assert_invariants(1e-9);
        // y's window is [1,1]; no weight may appear at t=0.
        assert_eq!(rig.weights.time_weight(y, 0), 0.0);
        assert_eq!(rig.weights.preferred_cluster(y), c(1));
    }
}
