//! Figure 10: compile-time scalability — scheduling time vs input
//! size for PCC, UAS, and convergent scheduling on the Chorus VLIW,
//! including time spent in the list scheduler (as the paper measures).
//!
//! The paper sweeps scheduling regions up to ~2000 instructions and
//! finds convergent and UAS scale comparably while PCC blows up
//! (its iterative descent re-runs a full schedule per probe).
//!
//! ```text
//! cargo run --release -p convergent-bench --bin figure10
//! cargo run --release -p convergent-bench --bin figure10 -- --jobs 4
//! ```
//!
//! Rows run serially by default so per-row wall-clock numbers are not
//! perturbed by sibling rows competing for cores; `--jobs N` opts into
//! the parallel harness (row *ordering* is preserved either way, but
//! timings then reflect a loaded machine).

use std::time::Instant;

use convergent_bench::parallel::{jobs_from_args, run_cells};
use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_schedulers::{PccScheduler, Scheduler, UasScheduler};
use convergent_workloads::{layered, LayeredParams};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let jobs = jobs_from_args(&mut args, 1);
    let machine = Machine::chorus_vliw(4);
    let sizes = [50usize, 100, 200, 400, 800, 1200, 1600, 2000];
    println!(
        "{:>8}{:>14}{:>14}{:>14}",
        "instrs", "pcc (s)", "uas (s)", "conv (s)"
    );
    let rows: Vec<(usize, f64, f64, f64)> = run_cells(&sizes, jobs, |&n| {
        let unit = layered(
            LayeredParams::new(n, 0xF16)
                .with_width(8)
                .with_preplacement(0.5, 4),
        );
        let pcc = time(|| {
            PccScheduler::new()
                .schedule(unit.dag(), &machine)
                .expect("pcc schedules")
                .makespan()
        });
        let uas = time(|| {
            UasScheduler::new()
                .schedule(unit.dag(), &machine)
                .expect("uas schedules")
                .makespan()
        });
        let conv = time(|| {
            Scheduler::schedule(&ConvergentScheduler::vliw_default(), unit.dag(), &machine)
                .expect("convergent schedules")
                .makespan()
        });
        (n, pcc, uas, conv)
    });
    for (n, pcc, uas, conv) in rows {
        println!("{n:>8}{pcc:>14.4}{uas:>14.4}{conv:>14.4}");
    }
    println!();
    println!("(paper: convergent and UAS take about the same time; both scale");
    println!(" considerably better than PCC)");
}

fn time<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    let _ = f();
    start.elapsed().as_secs_f64()
}
