//! REGPRESS — register-pressure smoothing.
//!
//! The paper's opening problem statement: "code sequences that expose
//! more instruction level parallelism also have longer live ranges
//! and higher register pressure", and its contribution list includes
//! "a novel approach to address the combined problems of cluster
//! assignment, scheduling, and register pressure". This pass is the
//! register-pressure member of the heuristic collection: it estimates,
//! from the current preferences, how many values would be live on each
//! cluster at each cycle, and where the estimate exceeds the register
//! file it *defers* the slack-richest producers — penalizing their
//! early time slots so their preferred times (and hence their
//! list-scheduling priorities) move later, serializing just enough of
//! the parallelism to fit the registers.
//!
//! Like every pass, it only nudges weights; a later pass can overrule
//! it. It is a no-op on schedules whose estimated pressure already
//! fits.

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::InstrId;

use crate::{Pass, PassContext};

/// The REGPRESS pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct RegPressure {
    /// Fraction of the register file the estimate may fill (1.0 uses
    /// the whole file; lower values leave headroom for allocator
    /// imperfection).
    capacity_fraction: f64,
    /// Penalty multiplier applied to a deferred instruction's early
    /// slots.
    penalty: f64,
}

impl RegPressure {
    /// Creates the pass using the full register file and a 0.25×
    /// early-slot penalty.
    #[must_use]
    pub fn new() -> Self {
        RegPressure {
            capacity_fraction: 1.0,
            penalty: 0.25,
        }
    }

    /// Sets the usable fraction of the register file.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    #[must_use]
    pub fn with_capacity_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "capacity fraction must be in (0, 1]"
        );
        self.capacity_fraction = fraction;
        self
    }
}

impl Default for RegPressure {
    fn default() -> Self {
        RegPressure::new()
    }
}

impl Pass for RegPressure {
    fn name(&self) -> &'static str {
        "REGPRESS"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let n_slots = ctx.weights.n_slots() as u32;
        let cap = (f64::from(ctx.machine.registers_per_cluster()) * self.capacity_fraction).max(1.0)
            as usize;

        // Estimated start (preferred time) per instruction. A value is
        // live from its producer's finish until its last consumer's
        // start (or one cycle past the finish for a consumer scheduled
        // under it); consumer starts are read from the undeferred
        // estimate, as a hard-assignment approximation.
        let start: Vec<u32> = ctx
            .dag
            .ids()
            .map(|i| ctx.weights.preferred_time(i).get())
            .collect();
        let interval = |i: InstrId, s: u32| -> (u32, u32) {
            let fin = s + ctx.time.latency(i);
            let d = ctx
                .dag
                .succs(i)
                .iter()
                .map(|&sc| start[sc.index()].max(fin))
                .max()
                .unwrap_or(fin);
            (fin, d.max(fin + 1))
        };

        for c in ctx.machine.cluster_ids() {
            // Values this cluster is expected to hold: producers whose
            // preferred cluster is c (a hard assignment's estimate).
            let mut here: Vec<InstrId> = ctx
                .dag
                .ids()
                .filter(|&i| !ctx.dag.succs(i).is_empty())
                .filter(|&i| ctx.weights.preferred_cluster(i) == c)
                .collect();
            here.sort_by_key(|&i| (start[i.index()], i));
            // Current (possibly deferred) start and live interval per
            // member; deferrals update both incrementally.
            let mut cur: Vec<u32> = here.iter().map(|&i| start[i.index()]).collect();
            let mut ivs: Vec<(u32, u32)> = here
                .iter()
                .zip(&cur)
                .map(|(&i, &s)| interval(i, s))
                .collect();

            // Sweep time; at each start event check the live estimate.
            for t in 0..n_slots {
                let live = |ivs: &[(u32, u32)]| -> Vec<usize> {
                    (0..here.len())
                        .filter(|&k| ivs[k].0 <= t && t < ivs[k].1)
                        .collect()
                };
                let mut live_now = live(&ivs);
                while live_now.len() > cap {
                    // Defer the live producer with the most slack whose
                    // start can still move later.
                    let candidate = live_now
                        .iter()
                        .copied()
                        .filter(|&k| {
                            let (_, hi) = ctx.weights.window(here[k]);
                            cur[k] < hi
                        })
                        .max_by_key(|&k| (ctx.time.slack(here[k]), here[k]));
                    let Some(k) = candidate else { break };
                    let i = here[k];
                    // Penalize everything at or before the current
                    // preferred start so the preference mass moves
                    // later.
                    let (lo, _) = ctx.weights.window(i);
                    for slot in lo..=cur[k].min(n_slots - 1) {
                        ctx.weights.scale_time(i, slot, self.penalty);
                    }
                    cur[k] += 1;
                    ivs[k] = interval(i, cur[k]);
                    live_now = live(&ivs);
                }
            }
        }
    }

    fn effect(&self) -> PassEffect {
        // A constant penalty on a deferred producer's early in-window
        // time slots. The same factor hits every cluster of a slot,
        // but different slots get different treatment, so spatial
        // marginals can shift: not a time-only pass (see the
        // `is_time_only` test below).
        PassEffect::new(vec![EffectOp::ScaleTimes {
            factor: Interval::point(self.penalty),
        }])
        .reads_windows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use crate::passes::InitTime;
    use convergent_ir::{Dag, DagBuilder, Opcode};
    use convergent_machine::Machine;

    /// A long chain plus `n` slack-rich independent producers, all
    /// feeding one sink. The independent values are live from cycle 1
    /// until the sink — unless their starts are deferred into the
    /// chain's shadow.
    fn chain_plus_fan_in(n: usize) -> (Dag, Vec<convergent_ir::InstrId>) {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..7 {
            let nxt = b.instr(Opcode::IntAlu);
            b.edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let producers: Vec<_> = (0..n).map(|_| b.instr(Opcode::IntAlu)).collect();
        let sink = b.instr(Opcode::IntAlu);
        b.edge(prev, sink).unwrap();
        for &p in &producers {
            b.edge(p, sink).unwrap();
        }
        (b.build().unwrap(), producers)
    }

    #[test]
    fn overloaded_cluster_spreads_start_times() {
        let machine = Machine::raw(1).with_registers_per_cluster(3);
        let (dag, producers) = chain_plus_fan_in(6);
        let mut rig = Rig::new(dag, machine);
        rig.run(&InitTime::new());
        let before: std::collections::HashSet<u32> = producers
            .iter()
            .map(|&i| rig.weights.preferred_time(i).get())
            .collect();
        assert_eq!(before.len(), 1, "producers tie at the earliest slot");
        rig.run(&RegPressure::new());
        rig.weights.assert_invariants(1e-9);
        let after: std::collections::HashSet<u32> = producers
            .iter()
            .map(|&i| rig.weights.preferred_time(i).get())
            .collect();
        // The independent producers no longer all prefer one cycle.
        assert!(after.len() > 1, "{after:?}");
    }

    #[test]
    fn fitting_pressure_is_identity() {
        let machine = Machine::raw(1).with_registers_per_cluster(32);
        let (dag, _) = chain_plus_fan_in(4);
        let mut rig = Rig::new(dag, machine);
        rig.run(&InitTime::new());
        let before = rig.weights.clone();
        rig.run(&RegPressure::new());
        for i in rig.dag.ids() {
            assert_eq!(
                rig.weights.preferred_time(i),
                before.preferred_time(i),
                "{i}"
            );
        }
    }

    #[test]
    fn is_time_only_in_effect_but_reports_as_spatial() {
        // The pass scales whole time slots (all clusters), so it can in
        // principle change spatial preferences too; it reports itself
        // as a regular pass.
        assert!(!RegPressure::new().is_time_only());
        assert_eq!(RegPressure::new().name(), "REGPRESS");
    }

    #[test]
    #[should_panic(expected = "capacity fraction")]
    fn bad_fraction_panics() {
        let _ = RegPressure::new().with_capacity_fraction(0.0);
    }
}
