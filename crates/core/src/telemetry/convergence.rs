//! Per-pass convergence metrics computed from the preference map.
//!
//! The paper's Figures 7 and 9 plot only decision churn (the fraction
//! of instructions whose preferred cluster changed). These metrics
//! widen that view: how *confident* the map is, how much probability
//! mass is still spread out (entropy), and how well the preplacement
//! constraints are already honored — all computable in one sweep over
//! the map after a pass, and only when a sink asked for them.

use convergent_ir::Dag;

use crate::PreferenceMap;

/// Confidence ratios are capped here so the metric stays finite (the
/// map reports `f64::INFINITY` once a runner-up's weight underflows).
pub const CONFIDENCE_CAP: f64 = 1e6;

/// The map-derived metrics (confidence, entropy, coverage) are
/// averaged over at most this many rows per measurement, chosen by
/// deterministic stride sampling (exact below the cap). Every one of
/// them is a mean over instructions, so a stride sample estimates it
/// without bias toward any DAG layer; the cap makes the whole
/// per-pass measurement O(cap) instead of O(region), which is what
/// holds enabled telemetry to a few percent of a pass's own work on
/// large regions. The stride is a pure function of the region size,
/// so measurements stay deterministic.
pub const CONVERGENCE_SAMPLE_CAP: usize = 256;

/// One pass's convergence measurement; see [`measure`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergenceMetrics {
    /// Mean per-instruction confidence (top-cluster weight over
    /// runner-up weight), capped at [`CONFIDENCE_CAP`] so the mean is
    /// always finite and JSON-representable. Averaged over the
    /// deterministic stride sample (see [`CONVERGENCE_SAMPLE_CAP`]).
    pub mean_confidence: f64,
    /// Fraction of instructions whose preferred cluster changed during
    /// the pass — the paper's churn, copied from the driver's scan.
    pub decision_churn: f64,
    /// Mean per-instruction Shannon entropy (nats) of the normalized
    /// `W[i, ·, ·]` distribution over the instruction's stored band.
    /// Uniform rows score high; converged rows approach zero. Averaged
    /// over the same stride sample (exact on smaller regions).
    pub preference_entropy: f64,
    /// Fraction of sampled preplaced instructions whose preferred
    /// cluster already equals their home cluster (`1.0` when the
    /// sample holds nothing preplaced).
    pub preplacement_coverage: f64,
}

impl ConvergenceMetrics {
    /// Renders the metrics as a flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mean_confidence\":{},\"decision_churn\":{},\"preference_entropy\":{},\"preplacement_coverage\":{}}}",
            fmt_f64(self.mean_confidence),
            fmt_f64(self.decision_churn),
            fmt_f64(self.preference_entropy),
            fmt_f64(self.preplacement_coverage),
        )
    }
}

/// JSON has no Infinity/NaN; the metrics are built to stay finite, but
/// guard anyway.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Computes the convergence metrics for the map's current state.
/// `decision_churn` is supplied by the caller (the driver already
/// maintains the changed-fraction scan). The map-derived metrics are
/// all means over instructions, so one deterministic stride sample of
/// at most [`CONVERGENCE_SAMPLE_CAP`] rows serves every term —
/// confidence and coverage via the argmax cache, entropy via the bulk
/// [`PreferenceMap::row_entropy`] kernel — keeping the measurement
/// O(cap) on any region size (and exact below the cap).
#[must_use]
pub fn measure(dag: &Dag, weights: &PreferenceMap, decision_churn: f64) -> ConvergenceMetrics {
    let stride = dag.len().div_ceil(CONVERGENCE_SAMPLE_CAP).max(1);
    let mut conf_sum = 0.0;
    let mut entropy_sum = 0.0;
    let mut sampled = 0usize;
    let mut preplaced = 0usize;
    let mut covered = 0usize;
    for i in dag.ids() {
        if i.index() % stride != 0 {
            continue;
        }
        sampled += 1;
        conf_sum += weights.confidence(i).min(CONFIDENCE_CAP);
        entropy_sum += weights.row_entropy(i);
        if let Some(home) = dag.instr(i).preplacement() {
            preplaced += 1;
            if weights.preferred_cluster(i) == home {
                covered += 1;
            }
        }
    }
    let sampled = sampled.max(1) as f64;
    ConvergenceMetrics {
        mean_confidence: conf_sum / sampled,
        decision_churn,
        preference_entropy: entropy_sum / sampled,
        preplacement_coverage: if preplaced == 0 {
            1.0
        } else {
            covered as f64 / preplaced as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{ClusterId, DagBuilder, InstrId, Opcode};

    #[test]
    fn uniform_map_has_high_entropy_and_unit_confidence() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let w = PreferenceMap::new(2, 4, 8);
        let m = measure(&dag, &w, 0.0);
        assert!((m.mean_confidence - 1.0).abs() < 1e-9, "{m:?}");
        // Uniform over 32 cells: entropy = ln 32.
        assert!(
            (m.preference_entropy - (32.0f64).ln()).abs() < 1e-9,
            "{m:?}"
        );
        assert_eq!(m.preplacement_coverage, 1.0);
        assert_eq!(m.decision_churn, 0.0);
    }

    #[test]
    fn converged_row_has_low_entropy_and_high_confidence() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, ClusterId::new(1));
        let dag = b.build().unwrap();
        let mut w = PreferenceMap::new(1, 2, 2);
        let i = InstrId::new(0);
        w.scale_cluster(i, ClusterId::new(1), 1e9);
        w.normalize(i);
        let m = measure(&dag, &w, 0.25);
        assert!(m.mean_confidence > 1e3, "{m:?}");
        assert!(m.mean_confidence <= CONFIDENCE_CAP);
        assert!(m.preference_entropy < (4.0f64).ln(), "{m:?}");
        assert_eq!(m.preplacement_coverage, 1.0);
        assert_eq!(m.decision_churn, 0.25);
    }

    #[test]
    fn coverage_counts_misplaced_homes() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, ClusterId::new(1));
        let dag = b.build().unwrap();
        let mut w = PreferenceMap::new(1, 2, 2);
        let i = InstrId::new(0);
        // Pull the preference away from the home cluster.
        w.scale_cluster(i, ClusterId::new(0), 100.0);
        w.normalize(i);
        let m = measure(&dag, &w, 0.0);
        assert_eq!(m.preplacement_coverage, 0.0);
    }

    #[test]
    fn json_is_flat_and_finite() {
        let m = ConvergenceMetrics {
            mean_confidence: 2.5,
            decision_churn: 0.125,
            preference_entropy: 1.0,
            preplacement_coverage: 1.0,
        };
        let j = m.to_json();
        assert!(j.contains("\"mean_confidence\":2.5"));
        assert!(j.contains("\"decision_churn\":0.125"));
        assert!(!j.contains("inf"));
    }
}
