//! Space-time schedules: the output every scheduler produces.

use convergent_ir::{ClusterId, Cycle, Dag, InstrId};
use convergent_machine::Machine;

use crate::{effective_latency_in, SimError};

/// One instruction placed in space and time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacedOp {
    /// The placed instruction.
    pub instr: InstrId,
    /// Cluster it executes on.
    pub cluster: ClusterId,
    /// Functional-unit (issue-slot) index within the cluster.
    pub fu: usize,
    /// Issue cycle.
    pub start: Cycle,
    /// Effective latency on that cluster (base + any remote-memory
    /// penalty), captured at build time.
    pub latency: u32,
}

impl PlacedOp {
    /// First cycle the result is available on the executing cluster.
    #[must_use]
    pub fn finish(&self) -> Cycle {
        self.start + self.latency
    }
}

/// One communication operation moving a produced value between
/// clusters.
///
/// On a clustered VLIW this is an explicit register copy occupying a
/// transfer unit (`fu = Some(index)` on the *source* cluster); on Raw's
/// register-mapped static network it is a route with no issue-slot cost
/// (`fu = None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommOp {
    /// Instruction whose value is being moved.
    pub producer: InstrId,
    /// Source cluster.
    pub from: ClusterId,
    /// Destination cluster.
    pub to: ClusterId,
    /// Cycle the transfer is injected.
    pub start: Cycle,
    /// Transfer latency (machine comm latency for the hop count).
    pub latency: u32,
    /// Issue slot on the source cluster, if the transfer occupies one.
    pub fu: Option<usize>,
}

impl CommOp {
    /// First cycle the value is available on the destination cluster.
    #[must_use]
    pub fn arrival(&self) -> Cycle {
        self.start + self.latency
    }
}

/// A complete schedule: every instruction placed, plus the
/// communication operations that carry values across clusters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceTimeSchedule {
    ops: Vec<PlacedOp>,
    comms: Vec<CommOp>,
    makespan: Cycle,
}

impl SpaceTimeSchedule {
    /// Assembles a schedule from raw parts, bypassing the builder's
    /// one-op-per-instruction bookkeeping. Only the validator's own
    /// tests need this: it is the sole way to express the malformed
    /// op lists (duplicates, drops, permutations) that
    /// [`crate::validate`]'s bijection check exists to reject.
    #[cfg(test)]
    pub(crate) fn from_parts(ops: Vec<PlacedOp>, comms: Vec<CommOp>, makespan: Cycle) -> Self {
        SpaceTimeSchedule {
            ops,
            comms,
            makespan,
        }
    }

    /// The placement of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn op(&self, i: InstrId) -> &PlacedOp {
        &self.ops[i.index()]
    }

    /// All placements, indexed by instruction id.
    #[must_use]
    pub fn ops(&self) -> &[PlacedOp] {
        &self.ops
    }

    /// All communication operations, in insertion order.
    #[must_use]
    pub fn comms(&self) -> &[CommOp] {
        &self.comms
    }

    /// Communication ops carrying `producer`'s value.
    pub fn comms_for(&self, producer: InstrId) -> impl Iterator<Item = &CommOp> + '_ {
        self.comms.iter().filter(move |c| c.producer == producer)
    }

    /// Total cycles: the cycle after the last finish or arrival.
    #[must_use]
    pub fn makespan(&self) -> Cycle {
        self.makespan
    }

    /// The spatial assignment implied by this schedule.
    #[must_use]
    pub fn assignment(&self) -> crate::Assignment {
        self.ops.iter().map(|op| op.cluster).collect()
    }

    /// Number of cross-cluster transfers.
    #[must_use]
    pub fn comm_count(&self) -> usize {
        self.comms.len()
    }
}

/// Incremental builder for [`SpaceTimeSchedule`].
///
/// Schedulers call [`ScheduleBuilder::place`] once per instruction and
/// [`ScheduleBuilder::comm`] for every transfer they insert, then
/// [`ScheduleBuilder::build`] to freeze the result. Effective latencies
/// are computed at build time from the machine model.
#[derive(Debug)]
pub struct ScheduleBuilder<'a> {
    dag: &'a Dag,
    placed: Vec<Option<(ClusterId, usize, Cycle)>>,
    comms: Vec<(InstrId, ClusterId, ClusterId, Cycle, Option<usize>)>,
}

impl<'a> ScheduleBuilder<'a> {
    /// Creates a builder for scheduling `dag`.
    #[must_use]
    pub fn new(dag: &'a Dag) -> Self {
        ScheduleBuilder {
            dag,
            placed: vec![None; dag.len()],
            comms: Vec::new(),
        }
    }

    /// Places instruction `i` on `cluster`, functional unit `fu`,
    /// starting at `start`. Re-placing an instruction overwrites the
    /// earlier placement.
    pub fn place(&mut self, i: InstrId, cluster: ClusterId, fu: usize, start: Cycle) {
        self.placed[i.index()] = Some((cluster, fu, start));
    }

    /// Returns `true` if instruction `i` has been placed.
    #[must_use]
    pub fn is_placed(&self, i: InstrId) -> bool {
        self.placed[i.index()].is_some()
    }

    /// Records a transfer of `producer`'s value from `from` to `to`
    /// injected at `start`, occupying issue slot `fu` on the source
    /// cluster if given.
    pub fn comm(
        &mut self,
        producer: InstrId,
        from: ClusterId,
        to: ClusterId,
        start: Cycle,
        fu: Option<usize>,
    ) {
        self.comms.push((producer, from, to, start, fu));
    }

    /// Freezes the schedule, computing per-op effective latencies and
    /// the makespan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] listing every unplaced instruction
    /// if any instruction was not placed.
    pub fn build(self, machine: &Machine) -> Result<SpaceTimeSchedule, SimError> {
        let mut missing = Vec::new();
        let mut ops = Vec::with_capacity(self.dag.len());
        for i in self.dag.ids() {
            match self.placed[i.index()] {
                Some((cluster, fu, start)) => {
                    let latency = effective_latency_in(self.dag, machine, i, cluster);
                    ops.push(PlacedOp {
                        instr: i,
                        cluster,
                        fu,
                        start,
                        latency,
                    });
                }
                None => missing.push(crate::Violation::Unplaced(i)),
            }
        }
        if !missing.is_empty() {
            return Err(SimError::Invalid(missing));
        }
        let comms: Vec<CommOp> = self
            .comms
            .into_iter()
            .map(|(producer, from, to, start, fu)| CommOp {
                producer,
                from,
                to,
                start,
                latency: machine.comm_latency(from, to),
                fu,
            })
            .collect();
        let op_end = ops
            .iter()
            .map(PlacedOp::finish)
            .max()
            .unwrap_or(Cycle::ZERO);
        let comm_end = comms
            .iter()
            .map(CommOp::arrival)
            .max()
            .unwrap_or(Cycle::ZERO);
        let makespan = op_end.max(comm_end);
        Ok(SpaceTimeSchedule {
            ops,
            comms,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};

    fn two_op_dag() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::Load);
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_computes_latencies_and_makespan() {
        let dag = two_op_dag();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(InstrId::new(0), ClusterId::new(0), 1, Cycle::ZERO);
        sb.place(InstrId::new(1), ClusterId::new(0), 0, Cycle::new(3));
        let s = sb.build(&m).unwrap();
        assert_eq!(s.op(InstrId::new(0)).latency, 3); // load
        assert_eq!(s.op(InstrId::new(0)).finish(), Cycle::new(3));
        assert_eq!(s.makespan(), Cycle::new(4));
        assert_eq!(s.comm_count(), 0);
        assert_eq!(s.assignment().cluster(InstrId::new(1)), ClusterId::new(0));
    }

    #[test]
    fn comm_extends_makespan() {
        let dag = two_op_dag();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(InstrId::new(0), ClusterId::new(0), 1, Cycle::ZERO);
        sb.place(InstrId::new(1), ClusterId::new(1), 0, Cycle::new(4));
        sb.comm(
            InstrId::new(0),
            ClusterId::new(0),
            ClusterId::new(1),
            Cycle::new(3),
            Some(3),
        );
        let s = sb.build(&m).unwrap();
        let comm = &s.comms()[0];
        assert_eq!(comm.latency, 1);
        assert_eq!(comm.arrival(), Cycle::new(4));
        assert_eq!(s.makespan(), Cycle::new(5));
        assert_eq!(s.comms_for(InstrId::new(0)).count(), 1);
        assert_eq!(s.comms_for(InstrId::new(1)).count(), 0);
    }

    #[test]
    fn unplaced_instructions_are_reported() {
        let dag = two_op_dag();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(InstrId::new(0), ClusterId::new(0), 0, Cycle::ZERO);
        assert!(!sb.is_placed(InstrId::new(1)));
        match sb.build(&m) {
            Err(SimError::Invalid(v)) => {
                assert_eq!(v, vec![crate::Violation::Unplaced(InstrId::new(1))]);
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn remote_memory_latency_captured() {
        let mut b = DagBuilder::new();
        let a = b.preplaced_instr(Opcode::Load, ClusterId::new(1));
        let _ = a;
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        // Placed away from home: base 3 + penalty 1.
        sb.place(InstrId::new(0), ClusterId::new(0), 1, Cycle::ZERO);
        let s = sb.build(&m).unwrap();
        assert_eq!(s.op(InstrId::new(0)).latency, 4);
    }
}
