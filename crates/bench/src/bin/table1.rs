//! Table 1: the pass sequences used by the convergent scheduler for
//! (a) the Raw machine and (b) the clustered VLIW.
//!
//! ```text
//! cargo run -p convergent-bench --bin table1
//! ```

use convergent_core::Sequence;

fn main() {
    println!("Table 1(a): Raw sequence");
    for name in Sequence::raw().names() {
        println!("  {name}");
    }
    println!();
    println!("Table 1(b): clustered VLIW sequence");
    for name in Sequence::vliw().names() {
        println!("  {name}");
    }
}
