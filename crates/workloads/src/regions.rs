//! Multi-region workloads: loop bodies split into back-to-back
//! scheduling regions with values live across the seams.

use convergent_ir::{DagBuilder, InstrId, Instruction, Opcode, Program, SchedulingUnit};

/// A pending cross-region link: `(name, def site, use sites)`.
type PendingLink = (String, (usize, InstrId), Vec<(usize, InstrId)>);

/// Parameters for [`multi_region_accumulate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiRegionParams {
    /// Memory banks / clusters.
    pub n_banks: u16,
    /// Number of back-to-back regions.
    pub regions: usize,
    /// Accumulators carried between regions (one per bank by default).
    pub carried: usize,
}

impl MultiRegionParams {
    /// A 3-region, 4-bank instance.
    #[must_use]
    pub fn small() -> Self {
        MultiRegionParams {
            n_banks: 4,
            regions: 3,
            carried: 4,
        }
    }
}

impl Default for MultiRegionParams {
    fn default() -> Self {
        MultiRegionParams::small()
    }
}

/// A strip-mined accumulation loop: each region loads a banked strip,
/// multiplies it, and folds it into per-lane accumulators that are
/// live into the next region; the last region reduces the
/// accumulators. This is exactly the pattern that forces the paper's
/// cross-region consistency rule.
///
/// # Panics
///
/// Panics if any parameter is zero.
#[must_use]
pub fn multi_region_accumulate(params: MultiRegionParams) -> Program {
    assert!(
        params.n_banks > 0 && params.regions > 0 && params.carried > 0,
        "non-trivial program"
    );
    let mut units = Vec::new();
    // (region, def instr) of each accumulator's latest definition.
    let mut defs: Vec<(usize, InstrId)> = Vec::new();
    let mut links: Vec<PendingLink> = Vec::new();

    for r in 0..params.regions {
        let mut b = DagBuilder::new();
        let mut new_defs = Vec::with_capacity(params.carried);
        #[allow(clippy::needless_range_loop)] // `lane` indexes both defs and banks
        for lane in 0..params.carried {
            let bank = (lane % params.n_banks as usize) as i64;
            let ld = b.push(
                Instruction::preplaced(Opcode::Load, convergent_ir::ClusterId::new(bank as u16))
                    .with_name(format!("x{r}[{lane}]")),
            );
            let mul = b.instr(Opcode::FMul);
            b.edge(ld, mul).expect("fresh ids");
            let acc = b.instr(Opcode::FAdd);
            b.edge(mul, acc).expect("fresh ids");
            if r > 0 {
                // `acc` also consumes the previous region's value.
                let (prev_region, prev_def) = defs[lane];
                links.push((
                    format!("acc{lane}@{prev_region}"),
                    (prev_region, prev_def),
                    vec![(r, acc)],
                ));
            }
            new_defs.push((r, acc));
        }
        if r + 1 == params.regions {
            // Final region: reduce and store.
            let accs: Vec<InstrId> = new_defs.iter().map(|&(_, i)| i).collect();
            let mut layer = accs;
            while layer.len() > 1 {
                let mut next = Vec::new();
                for pair in layer.chunks(2) {
                    match pair {
                        [x, y] => {
                            let s = b.instr(Opcode::FAdd);
                            b.edge(*x, s).expect("fresh ids");
                            b.edge(*y, s).expect("fresh ids");
                            next.push(s);
                        }
                        [x] => next.push(*x),
                        _ => unreachable!("chunks(2)"),
                    }
                }
                layer = next;
            }
            let st = b.instr(Opcode::Store);
            b.edge(layer[0], st).expect("fresh ids");
        }
        units.push(SchedulingUnit::new(
            format!("strip{r}"),
            b.build().expect("generator graphs are valid"),
        ));
        defs = new_defs;
    }

    let mut program = Program::new(units);
    for (name, def, uses) in links {
        program
            .link(name, def, uses)
            .expect("generator links are well-formed");
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_has_expected_shape() {
        let p = multi_region_accumulate(MultiRegionParams::small());
        assert_eq!(p.units().len(), 3);
        // Each of regions 1 and 2 consumes 4 carried accumulators.
        assert_eq!(p.values().len(), 8);
        assert!(p.len() > 30);
    }

    #[test]
    fn links_point_forward() {
        let p = multi_region_accumulate(MultiRegionParams::small());
        for v in p.values() {
            for &(uu, _) in v.uses() {
                assert!(uu > v.def().0, "{}", v.name());
            }
        }
    }
}
