#![warn(missing_docs)]
//! Reconstructed benchmark workloads for the convergent-scheduling
//! reproduction.
//!
//! The paper evaluates on dependence graphs extracted by Rawcc/Chorus
//! from: the Raw benchmark suite (jacobi, life), Spec92 Nasa7
//! (cholesky, vpenta, mxm), Spec95 (tomcatv, fpppp-kernel, swim), sha,
//! fir, rbsorf, vvmul, and yuv. The original traces are long gone, so
//! each generator here reconstructs the *dependence-graph shape* the
//! scheduler would have seen: the unrolled inner loop, its operation
//! mix, its reduction/stencil structure, and the congruence-analysis
//! preplacement of memory operations onto banks (see DESIGN.md for the
//! substitution argument).
//!
//! Every generator is deterministic and parameterized by the bank
//! (cluster/tile) count, because the paper's congruence pass "usually
//! unrolls the loops by the number of clusters or tiles".
//!
//! # Example
//!
//! ```
//! use convergent_workloads::{mxm, MxmParams};
//!
//! let unit = mxm(MxmParams::small());
//! assert_eq!(unit.name(), "mxm");
//! assert!(unit.dag().preplaced_count() > 0); // congruence-banked loads
//! ```

pub mod adversarial;
mod dense;
mod kernel;
pub mod random;
mod regions;
mod serial;
mod solver;
mod stencil;
mod suite;

pub use adversarial::{deep_chain, disconnected, fully_preplaced, op_class_desert, wide_fanin};
pub use dense::{fir, mxm, vvmul, yuv, FirParams, MxmParams, VvmulParams, YuvParams};
pub use random::{layered, parallel_chains, series_parallel, LayeredParams};
pub use regions::{multi_region_accumulate, MultiRegionParams};
pub use serial::{fpppp_kernel, sha, FppppParams, ShaParams};
pub use solver::{cholesky, vpenta, CholeskyParams, VpentaParams};
pub use stencil::{jacobi, life, rbsorf, swim, tomcatv, StencilParams};
pub use suite::{raw_suite, rebank, vliw_suite};
