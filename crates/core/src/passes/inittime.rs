//! INITTIME — initial time assignment.
//!
//! "An instruction in the middle of the dependence graph cannot be
//! scheduled before its predecessors, nor after its successors. … This
//! pass squashes to zero all the weights outside this range." The
//! paper also notes "a pass similar to this one can address the fact
//! that some instructions cannot be scheduled in all clusters … simply
//! by squashing the weights for the unfeasible clusters" — we fold
//! that in here, since both are hard feasibility facts.

use convergent_analysis::{EffectOp, PassEffect};

use crate::{Pass, PassContext, PassContract};

/// The INITTIME pass. See the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct InitTime;

impl InitTime {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        InitTime
    }
}

impl Pass for InitTime {
    fn name(&self) -> &'static str {
        "INITTIME"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let last_slot = ctx.weights.n_slots() as u32 - 1;
        for i in ctx.dag.ids() {
            let lo = ctx.time.earliest_start(i).min(last_slot);
            let hi = ctx.time.latest_start(i).clamp(lo, last_slot);
            ctx.weights.set_window(i, lo, hi);
            for c in ctx.machine.cluster_ids() {
                if !ctx.machine.cluster_can_execute(c, ctx.dag.instr(i).class()) {
                    ctx.weights.forbid_cluster(i, c);
                }
            }
        }
    }

    fn contract(&self) -> PassContract {
        PassContract {
            establishes_windows: true,
            ..PassContract::default()
        }
    }

    fn effect(&self) -> PassEffect {
        // Windows from the timing analysis, plus squashing clusters
        // that cannot execute the instruction's class — both hard
        // feasibility facts derived from the graph alone.
        PassEffect::new(vec![
            EffectOp::EstablishWindows,
            EffectOp::Forbid {
                only_incapable: true,
            },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{DagBuilder, InstrId, Opcode};
    use convergent_machine::Machine;

    #[test]
    fn windows_match_time_analysis() {
        // load(3) -> add(1), island mul(2). CPL = 4.
        let mut b = DagBuilder::new();
        let ld = b.instr(Opcode::Load);
        let ad = b.instr(Opcode::IntAlu);
        let mu = b.instr(Opcode::IntMul);
        b.edge(ld, ad).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::chorus_vliw(2));
        rig.run(&InitTime::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.window(ld), (0, 0));
        assert_eq!(rig.weights.window(ad), (3, 3));
        // Island: latest start = CPL - lat = 2.
        assert_eq!(rig.weights.window(mu), (0, 2));
        // Weight outside the window is gone.
        assert_eq!(rig.weights.time_weight(ad, 0), 0.0);
        assert!(rig.weights.time_weight(ad, 3) > 0.99);
    }

    #[test]
    fn critical_instructions_get_single_slot() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&InitTime::new());
        let (lo, hi) = rig.weights.window(x);
        assert_eq!((lo, hi), (0, 0));
        assert_eq!(rig.weights.window(y), (1, 1));
        assert_eq!(rig.weights.preferred_time(InstrId::new(1)).get(), 1);
    }

    #[test]
    fn is_a_space_affecting_pass() {
        // INITTIME also squashes infeasible clusters, so it is not
        // time-only.
        assert!(!InitTime::new().is_time_only());
        assert_eq!(InitTime::new().name(), "INITTIME");
    }
}
