//! Interconnect topologies.

use convergent_ir::ClusterId;

/// How clusters are physically connected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// All clusters are one hop apart (a clustered VLIW's copy bus).
    PointToPoint,
    /// A 2-D mesh of `width × height` tiles (Raw). Cluster `c` sits at
    /// `(c % width, c / width)`.
    Mesh {
        /// Mesh width in tiles.
        width: u16,
        /// Mesh height in tiles.
        height: u16,
    },
}

impl Topology {
    /// Number of clusters this topology connects, if it constrains the
    /// count (meshes do; point-to-point does not).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        match self {
            Topology::PointToPoint => None,
            Topology::Mesh { width, height } => Some(usize::from(*width) * usize::from(*height)),
        }
    }

    /// Mesh coordinates of a cluster.
    ///
    /// For [`Topology::PointToPoint`] every cluster is at `(c, 0)`.
    #[must_use]
    pub fn coords(&self, c: ClusterId) -> (u16, u16) {
        match self {
            Topology::PointToPoint => (c.raw(), 0),
            Topology::Mesh { width, .. } => (c.raw() % width, c.raw() / width),
        }
    }

    /// Number of network hops between two clusters (Manhattan distance
    /// on a mesh; 0 for identical clusters; 1 between any two distinct
    /// clusters on point-to-point).
    #[must_use]
    pub fn hops(&self, a: ClusterId, b: ClusterId) -> u32 {
        if a == b {
            return 0;
        }
        match self {
            Topology::PointToPoint => 1,
            Topology::Mesh { .. } => {
                let (ax, ay) = self.coords(a);
                let (bx, by) = self.coords(b);
                u32::from(ax.abs_diff(bx)) + u32::from(ay.abs_diff(by))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coords_and_hops() {
        let m = Topology::Mesh {
            width: 4,
            height: 4,
        };
        assert_eq!(m.capacity(), Some(16));
        assert_eq!(m.coords(ClusterId::new(0)), (0, 0));
        assert_eq!(m.coords(ClusterId::new(5)), (1, 1));
        assert_eq!(m.coords(ClusterId::new(15)), (3, 3));
        assert_eq!(m.hops(ClusterId::new(0), ClusterId::new(15)), 6);
        assert_eq!(m.hops(ClusterId::new(0), ClusterId::new(1)), 1);
        assert_eq!(m.hops(ClusterId::new(7), ClusterId::new(7)), 0);
        // Symmetric.
        assert_eq!(
            m.hops(ClusterId::new(2), ClusterId::new(9)),
            m.hops(ClusterId::new(9), ClusterId::new(2))
        );
    }

    #[test]
    fn point_to_point_is_flat() {
        let p = Topology::PointToPoint;
        assert_eq!(p.capacity(), None);
        assert_eq!(p.hops(ClusterId::new(0), ClusterId::new(3)), 1);
        assert_eq!(p.hops(ClusterId::new(2), ClusterId::new(2)), 0);
    }

    #[test]
    fn rectangular_mesh() {
        let m = Topology::Mesh {
            width: 4,
            height: 2,
        };
        assert_eq!(m.capacity(), Some(8));
        assert_eq!(m.coords(ClusterId::new(6)), (2, 1));
        assert_eq!(m.hops(ClusterId::new(0), ClusterId::new(7)), 4);
    }
}
