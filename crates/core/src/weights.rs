//! The preference map — the paper's central data structure.
//!
//! Section 3 of the paper: preferences are "a three dimensional matrix
//! `W[i,c,t]`, where `i` spans over all instructions in the scheduling
//! unit, `c` spans over the clusters in the architecture, and `t` spans
//! over time", with "as many time slots as the critical-path length".
//! Two invariants are maintained:
//!
//! ```text
//! ∀ i,t,c : 0 ≤ W[i,t,c] ≤ 1
//! ∀ i     : Σ_{t,c} W[i,t,c] = 1
//! ```
//!
//! Passes talk to each other exclusively by reading and nudging these
//! weights; [`PreferenceMap`] provides the basic operations the paper
//! lists (scaling, normalization, per-dimension combination) plus the
//! derived quantities (`preferred_cluster`, `preferred_time`,
//! `runnerup_cluster`, `confidence`). Marginal sums over time and
//! clusters are maintained incrementally so the derived quantities are
//! cheap, as the paper prescribes.
//!
//! # The lazy-scale invariant
//!
//! Normalization runs after *every* pass, so an eager implementation
//! rewrites the entire dense tensor O(N·C·T) times per schedule. This
//! map instead stores, per instruction, a *raw* row plus a scalar
//! `scale[i]`, with the invariant that the externally visible weight is
//! always
//!
//! ```text
//! W[i,c,t] = w_raw[i,c,t] · scale[i]
//! ```
//!
//! (and likewise for the cached marginals and total). Every read
//! multiplies by `scale[i]`; [`PreferenceMap::normalize`] then only has
//! to set `scale[i] = 1 / total_raw[i]` — O(1) — and
//! [`PreferenceMap::normalize_all`] is O(N) in the common
//! all-totals-positive case. Writes compose with the pending scale:
//! multiplicative operations (`scale`, `scale_cluster`, `scale_time`)
//! act on the raw values directly (they commute with the scalar), while
//! absolute writes (`set`, and `add` via `set`) divide the incoming
//! value by `scale[i]`. Raw magnitudes drift as passes multiply weight
//! in and out, so `normalize` folds the scalar back into the dense row
//! ([`PreferenceMap::materialize`]) whenever it leaves
//! `[SCALE_FOLD_MIN, SCALE_FOLD_MAX]`, keeping every quantity
//! comfortably inside `f64` range. `materialize` is also the escape
//! hatch for external readers that want plain eagerly-normalized rows.
//!
//! # Incremental argmax caches
//!
//! The derived argmax quantities (`preferred_cluster`,
//! `runnerup_cluster`, `confidence`, `preferred_time`) are memoized per
//! instruction and invalidated on writes, so the driver's per-pass
//! convergence trace and read-heavy passes (PATHPROP walks, COMM
//! reinforcement) stop paying an O(C) or O(T) scan per call. The
//! invalidation rules are conservative and *exact* with one documented
//! exception: a cached argmax is kept across `normalize`, and because
//! tie-breaking compares against an absolute `EPS`, rescaling can in
//! principle flip a comparison for two entries within `EPS` of each
//! other. Such sub-`EPS` ties are semantically arbitrary (the paper's
//! tie-break is "pick either"), and every cached answer is still the
//! argmax up to `EPS` at the time it was computed.

use std::cell::Cell;

use convergent_ir::{ClusterId, Cycle, InstrId};

/// Weights below this threshold are treated as zero when normalizing.
const EPS: f64 = 1e-12;

/// Bounds on the pending scale factor; `normalize` folds the factor
/// into the dense row (`materialize`) when it leaves this range so raw
/// magnitudes never approach `f64` overflow/underflow.
const SCALE_FOLD_MIN: f64 = 1e-90;
/// See [`SCALE_FOLD_MIN`].
const SCALE_FOLD_MAX: f64 = 1e90;

/// Sentinel for "no runner-up cluster" in the argmax cache.
const NO_CLUSTER: u16 = u16::MAX;

/// Memoized argmax results for one instruction. `Copy` so it lives in
/// a [`Cell`], letting `&self` readers fill it lazily.
#[derive(Clone, Copy, Debug)]
struct ArgmaxCache {
    /// Valid bit for `top_cluster` / `second_cluster`.
    cluster_valid: bool,
    /// Valid bit for `top_time`.
    time_valid: bool,
    top_cluster: u16,
    second_cluster: u16,
    top_time: u32,
}

impl ArgmaxCache {
    const INVALID: ArgmaxCache = ArgmaxCache {
        cluster_valid: false,
        time_valid: false,
        top_cluster: 0,
        second_cluster: NO_CLUSTER,
        top_time: 0,
    };
}

/// A dense `instructions × clusters × time` preference map with lazy
/// normalization (see the module docs).
///
/// # Example
///
/// ```
/// use convergent_core::PreferenceMap;
/// use convergent_ir::{ClusterId, InstrId};
///
/// let mut w = PreferenceMap::new(2, 4, 10);
/// let i = InstrId::new(0);
/// // Initially uniform: no preference, confidence 1.
/// assert_eq!(w.confidence(i), 1.0);
/// // Nudge instruction 0 toward cluster 2 and re-normalize.
/// w.scale_cluster(i, ClusterId::new(2), 5.0);
/// w.normalize(i);
/// assert_eq!(w.preferred_cluster(i), ClusterId::new(2));
/// assert!(w.confidence(i) > 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct PreferenceMap {
    n_instrs: usize,
    n_clusters: usize,
    n_slots: usize,
    /// Raw weights; the visible value is `w[k] * scale[i]`.
    w: Vec<f64>,
    /// Raw marginals, same scaling convention as `w`.
    cluster_sum: Vec<f64>,
    time_sum: Vec<f64>,
    total: Vec<f64>,
    /// Pending per-instruction normalization factor.
    scale: Vec<f64>,
    window: Vec<(u32, u32)>,
    cluster_ok: Vec<bool>,
    argmax: Vec<Cell<ArgmaxCache>>,
    /// Reused by `set_cluster_marginal` to avoid per-call allocation.
    scratch: Vec<f64>,
}

impl PreferenceMap {
    /// Creates a map with uniform preferences.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        assert!(n_instrs > 0, "need at least one instruction");
        assert!(n_clusters > 0, "need at least one cluster");
        assert!(n_slots > 0, "need at least one time slot");
        assert!(n_clusters < NO_CLUSTER as usize, "too many clusters");
        let per = 1.0 / (n_clusters * n_slots) as f64;
        PreferenceMap {
            n_instrs,
            n_clusters,
            n_slots,
            w: vec![per; n_instrs * n_clusters * n_slots],
            cluster_sum: vec![per * n_slots as f64; n_instrs * n_clusters],
            time_sum: vec![per * n_clusters as f64; n_instrs * n_slots],
            total: vec![1.0; n_instrs],
            scale: vec![1.0; n_instrs],
            window: vec![(0, n_slots as u32 - 1); n_instrs],
            cluster_ok: vec![true; n_instrs * n_clusters],
            argmax: vec![Cell::new(ArgmaxCache::INVALID); n_instrs],
            scratch: Vec::new(),
        }
    }

    /// Number of instructions.
    #[must_use]
    pub fn n_instrs(&self) -> usize {
        self.n_instrs
    }

    /// Number of clusters.
    #[must_use]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of time slots (the critical-path length).
    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    #[inline]
    fn idx(&self, i: InstrId, c: ClusterId, t: u32) -> usize {
        debug_assert!(i.index() < self.n_instrs);
        debug_assert!(c.index() < self.n_clusters);
        debug_assert!((t as usize) < self.n_slots);
        (i.index() * self.n_clusters + c.index()) * self.n_slots + t as usize
    }

    /// The weight `W[i, c, t]`.
    #[must_use]
    pub fn get(&self, i: InstrId, c: ClusterId, t: u32) -> f64 {
        self.w[self.idx(i, c, t)] * self.scale[i.index()]
    }

    /// Sets `W[i, c, t]`, updating marginals.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn set(&mut self, i: InstrId, c: ClusterId, t: u32, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
        let ii = i.index();
        let k = self.idx(i, c, t);
        let raw = value / self.scale[ii];
        let delta = raw - self.w[k];
        if delta == 0.0 {
            return;
        }
        self.w[k] = raw;
        self.cluster_sum[ii * self.n_clusters + c.index()] += delta;
        self.time_sum[ii * self.n_slots + t as usize] += delta;
        self.total[ii] += delta;
        self.note_cluster_write(ii, c.index(), delta > 0.0);
        self.note_time_write(ii, t as usize, delta > 0.0);
    }

    /// Adds `delta` to `W[i, c, t]`, clamping at zero.
    pub fn add(&mut self, i: InstrId, c: ClusterId, t: u32, delta: f64) {
        let cur = self.get(i, c, t);
        self.set(i, c, t, (cur + delta).max(0.0));
    }

    /// Multiplies `W[i, c, t]` by `factor` (≥ 0).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let k = self.idx(i, c, t);
        let old = self.w[k];
        let new = old * factor;
        let delta = new - old;
        if delta == 0.0 {
            return;
        }
        self.w[k] = new;
        self.cluster_sum[ii * self.n_clusters + c.index()] += delta;
        self.time_sum[ii * self.n_slots + t as usize] += delta;
        self.total[ii] += delta;
        self.note_cluster_write(ii, c.index(), delta > 0.0);
        self.note_time_write(ii, t as usize, delta > 0.0);
    }

    /// Multiplies every time slot of `(i, c)` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let base = self.idx(i, c, 0);
        let old_sum = self.cluster_sum[ii * self.n_clusters + c.index()];
        let mut new_sum = 0.0;
        let mut changed = false;
        for t in 0..self.n_slots {
            let old = self.w[base + t];
            let new = old * factor;
            if new != old {
                self.w[base + t] = new;
                self.time_sum[ii * self.n_slots + t] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        // Rebuild the scaled marginal and the total from scratch rather
        // than adding a delta: a delta leaves an absolute error behind
        // that sustained shrinking (factor « 1, round after round)
        // amplifies relative to the shrinking true value.
        self.cluster_sum[ii * self.n_clusters + c.index()] = new_sum;
        self.total[ii] = self.cluster_sum[ii * self.n_clusters..(ii + 1) * self.n_clusters]
            .iter()
            .sum();
        self.note_cluster_write(ii, c.index(), new_sum > old_sum);
        // Several time marginals moved at once; no cheap exact rule.
        self.invalidate_time(ii);
    }

    /// Multiplies every cluster's weight at time `t` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale_time(&mut self, i: InstrId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let old_sum = self.time_sum[ii * self.n_slots + t as usize];
        let mut new_sum = 0.0;
        let mut changed = false;
        for c in 0..self.n_clusters {
            let k = self.idx(i, ClusterId::new(c as u16), t);
            let old = self.w[k];
            let new = old * factor;
            if new != old {
                self.w[k] = new;
                self.cluster_sum[ii * self.n_clusters + c] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        // Exact rebuild of the scaled marginal; see `scale_cluster`.
        self.time_sum[ii * self.n_slots + t as usize] = new_sum;
        self.total[ii] += new_sum - old_sum;
        // Several cluster marginals moved at once; no cheap exact rule.
        self.invalidate_cluster(ii);
        self.note_time_write(ii, t as usize, new_sum > old_sum);
    }

    /// Restricts `i` to time slots `[lo, hi]`, zeroing all weight
    /// outside and *intersecting* the recorded window with any window
    /// set earlier — a feasibility constraint, once established, can
    /// only tighten.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, `hi` is out of range, or the intersection
    /// with the previously recorded window is empty.
    pub fn set_window(&mut self, i: InstrId, lo: u32, hi: u32) {
        assert!(lo <= hi, "window must be non-empty");
        assert!((hi as usize) < self.n_slots, "window exceeds time slots");
        let ii = i.index();
        let (old_lo, old_hi) = self.window[ii];
        let lo = lo.max(old_lo);
        let hi = hi.min(old_hi);
        assert!(lo <= hi, "window must be non-empty");
        self.window[ii] = (lo, hi);
        let mut any_removed = false;
        for t in 0..self.n_slots {
            if (t as u32) >= lo && (t as u32) <= hi {
                continue;
            }
            for c in 0..self.n_clusters {
                let k = (ii * self.n_clusters + c) * self.n_slots + t;
                let v = self.w[k];
                if v != 0.0 {
                    self.w[k] = 0.0;
                    self.cluster_sum[ii * self.n_clusters + c] -= v;
                    self.total[ii] -= v;
                    any_removed = true;
                }
            }
            self.time_sum[ii * self.n_slots + t] = 0.0;
        }
        if any_removed {
            self.invalidate_cluster(ii);
            let cache = self.argmax[ii].get();
            if cache.time_valid && !(lo..=hi).contains(&cache.top_time) {
                self.invalidate_time(ii);
            }
        }
    }

    /// The feasible `[lo, hi]` window of `i`.
    #[must_use]
    pub fn window(&self, i: InstrId) -> (u32, u32) {
        self.window[i.index()]
    }

    /// Marks cluster `c` as unable to execute `i`, zeroing its weight.
    pub fn forbid_cluster(&mut self, i: InstrId, c: ClusterId) {
        self.cluster_ok[i.index() * self.n_clusters + c.index()] = false;
        self.scale_cluster(i, c, 0.0);
    }

    /// Returns `true` if cluster `c` may execute `i`.
    #[must_use]
    pub fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        self.cluster_ok[i.index() * self.n_clusters + c.index()]
    }

    /// The cluster marginal `Σ_t W[i, c, t]`.
    #[must_use]
    pub fn cluster_weight(&self, i: InstrId, c: ClusterId) -> f64 {
        self.cluster_sum[i.index() * self.n_clusters + c.index()] * self.scale[i.index()]
    }

    /// The time marginal `Σ_c W[i, c, t]`.
    #[must_use]
    pub fn time_weight(&self, i: InstrId, t: u32) -> f64 {
        self.time_sum[i.index() * self.n_slots + t as usize] * self.scale[i.index()]
    }

    /// Total weight of `i` (1 when normalized).
    #[must_use]
    pub fn total(&self, i: InstrId) -> f64 {
        self.total[i.index()] * self.scale[i.index()]
    }

    /// Fills the cluster half of `i`'s argmax cache if it is stale,
    /// using the same scan (and tie-breaks) as the eager
    /// implementation, and returns `(top, second)`.
    fn cluster_cache(&self, i: InstrId) -> (u16, u16) {
        let ii = i.index();
        let mut cache = self.argmax[ii].get();
        if !cache.cluster_valid {
            let base = ii * self.n_clusters;
            // The scale multiplies out of every comparison except the
            // absolute EPS; apply it so cached answers match what a
            // fresh eager scan of the visible values would produce.
            let s = self.scale[ii];
            let mut best = 0usize;
            for c in 1..self.n_clusters {
                if self.cluster_sum[base + c] * s > self.cluster_sum[base + best] * s + EPS {
                    best = c;
                }
            }
            let mut second: Option<usize> = None;
            for c in 0..self.n_clusters {
                if c == best {
                    continue;
                }
                match second {
                    Some(b)
                        if self.cluster_sum[base + c] * s
                            <= self.cluster_sum[base + b] * s + EPS => {}
                    _ => second = Some(c),
                }
            }
            cache.top_cluster = best as u16;
            cache.second_cluster = second.map_or(NO_CLUSTER, |c| c as u16);
            cache.cluster_valid = true;
            self.argmax[ii].set(cache);
        }
        (cache.top_cluster, cache.second_cluster)
    }

    /// Fills the time half of `i`'s argmax cache if it is stale and
    /// returns the top slot.
    fn time_cache(&self, i: InstrId) -> u32 {
        let ii = i.index();
        let mut cache = self.argmax[ii].get();
        if !cache.time_valid {
            let base = ii * self.n_slots;
            let s = self.scale[ii];
            let mut best = 0usize;
            for t in 1..self.n_slots {
                if self.time_sum[base + t] * s > self.time_sum[base + best] * s + EPS {
                    best = t;
                }
            }
            cache.top_time = best as u32;
            cache.time_valid = true;
            self.argmax[ii].set(cache);
        }
        cache.top_time
    }

    /// Records the effect of a single-cluster marginal change on the
    /// cached argmax. Exact: the cache is kept only when the old scan
    /// result provably still holds.
    fn note_cluster_write(&self, ii: usize, c: usize, increased: bool) {
        let cell = &self.argmax[ii];
        let mut cache = cell.get();
        if !cache.cluster_valid {
            return;
        }
        let top = cache.top_cluster as usize;
        let keep = if increased {
            // Boosting the leader changes neither the leader nor the
            // best-of-the-rest.
            c == top
        } else {
            // Shrinking a cluster that is neither top nor runner-up
            // cannot promote it and cannot demote either of them.
            c != top && cache.second_cluster != NO_CLUSTER && c != cache.second_cluster as usize
        };
        if !keep {
            cache.cluster_valid = false;
            cell.set(cache);
        }
    }

    /// Records the effect of a single-time-slot marginal change on the
    /// cached argmax. Exact, including the in-place `top_time` update
    /// when a later or earlier slot overtakes the leader by more than
    /// `EPS`.
    fn note_time_write(&self, ii: usize, t: usize, increased: bool) {
        let cell = &self.argmax[ii];
        let mut cache = cell.get();
        if !cache.time_valid {
            return;
        }
        let top = cache.top_time as usize;
        if t == top {
            if !increased {
                cache.time_valid = false;
                cell.set(cache);
            }
            return;
        }
        if !increased {
            // Shrinking a non-leader slot never changes the scan.
            return;
        }
        let base = ii * self.n_slots;
        let s = self.scale[ii];
        let vt = self.time_sum[base + t] * s;
        let vtop = self.time_sum[base + top] * s;
        if vt > vtop + EPS {
            // `t` now beats the old leader by more than the tie band,
            // so a fresh scan would end exactly at `t`.
            cache.top_time = t as u32;
            cell.set(cache);
        } else if t < top && vt > vtop - EPS {
            // An earlier slot climbed into the tie band; the
            // earliest-slot tie-break could now pick it. Rescan.
            cache.time_valid = false;
            cell.set(cache);
        }
    }

    fn invalidate_cluster(&self, ii: usize) {
        let cell = &self.argmax[ii];
        let mut cache = cell.get();
        if cache.cluster_valid {
            cache.cluster_valid = false;
            cell.set(cache);
        }
    }

    fn invalidate_time(&self, ii: usize) {
        let cell = &self.argmax[ii];
        let mut cache = cell.get();
        if cache.time_valid {
            cache.time_valid = false;
            cell.set(cache);
        }
    }

    /// `argmax_c Σ_t W[i, c, t]` — the paper's `preferred_cluster`.
    /// Ties break toward the lowest cluster id.
    #[must_use]
    pub fn preferred_cluster(&self, i: InstrId) -> ClusterId {
        ClusterId::new(self.cluster_cache(i).0)
    }

    /// The second-best cluster, or `None` on single-cluster machines.
    #[must_use]
    pub fn runnerup_cluster(&self, i: InstrId) -> Option<ClusterId> {
        if self.n_clusters < 2 {
            return None;
        }
        let (_, second) = self.cluster_cache(i);
        debug_assert_ne!(second, NO_CLUSTER);
        Some(ClusterId::new(second))
    }

    /// `argmax_t Σ_c W[i, c, t]` — the paper's `preferred_time`.
    /// Ties break toward the earliest slot.
    #[must_use]
    pub fn preferred_time(&self, i: InstrId) -> Cycle {
        Cycle::new(self.time_cache(i))
    }

    /// The paper's confidence: the ratio of the top two cluster
    /// marginals. Returns `f64::INFINITY` when there is no runner-up
    /// or its weight is (numerically) zero.
    #[must_use]
    pub fn confidence(&self, i: InstrId) -> f64 {
        let top = self.cluster_weight(i, self.preferred_cluster(i));
        match self.runnerup_cluster(i) {
            Some(r) => {
                let second = self.cluster_weight(i, r);
                if second <= EPS {
                    f64::INFINITY
                } else {
                    top / second
                }
            }
            None => f64::INFINITY,
        }
    }

    /// Renormalizes `i` so its weights sum to 1 — O(1): only the
    /// pending scale factor changes (see the module docs). If every
    /// weight was squashed to (numerical) zero, the distribution resets
    /// to uniform over the instruction's feasible window and clusters,
    /// so feasibility decisions survive aggressive scaling.
    pub fn normalize(&mut self, i: InstrId) {
        let ii = i.index();
        let tot = self.total[ii] * self.scale[ii];
        if tot > EPS {
            let inv = 1.0 / self.total[ii];
            self.scale[ii] = inv;
            if !(SCALE_FOLD_MIN..=SCALE_FOLD_MAX).contains(&inv) {
                self.materialize(i);
            }
        } else {
            self.reset_uniform(i);
        }
    }

    /// Folds `i`'s pending scale factor into its dense row, leaving
    /// every visible value unchanged and `scale[i] == 1`. Call this
    /// before handing raw rows to code that bypasses the accessors.
    pub fn materialize(&mut self, i: InstrId) {
        let ii = i.index();
        let s = self.scale[ii];
        if s == 1.0 {
            return;
        }
        let row = self.n_clusters * self.n_slots;
        for k in ii * row..(ii + 1) * row {
            self.w[k] *= s;
        }
        for c in 0..self.n_clusters {
            self.cluster_sum[ii * self.n_clusters + c] *= s;
        }
        for t in 0..self.n_slots {
            self.time_sum[ii * self.n_slots + t] *= s;
        }
        self.total[ii] *= s;
        self.scale[ii] = 1.0;
        // Visible values are unchanged, so cached argmaxes stay valid.
    }

    /// [`PreferenceMap::materialize`] for every instruction.
    pub fn materialize_all(&mut self) {
        for i in 0..self.n_instrs {
            self.materialize(InstrId::new(i as u32));
        }
    }

    /// Resets `i` to a uniform distribution over its feasible window
    /// and clusters.
    pub fn reset_uniform(&mut self, i: InstrId) {
        let ii = i.index();
        let (lo, hi) = self.window[ii];
        let n_feasible = self.cluster_ok[ii * self.n_clusters..(ii + 1) * self.n_clusters]
            .iter()
            .filter(|&&ok| ok)
            .count();
        // A machine mismatch could leave no feasible cluster; fall back
        // to all clusters rather than a degenerate all-zero row.
        let use_all = n_feasible == 0;
        let n_live = if use_all { self.n_clusters } else { n_feasible };
        let slots = (hi - lo + 1) as usize;
        let per = 1.0 / (n_live * slots) as f64;
        // Clear, then fill.
        let row = self.n_clusters * self.n_slots;
        for k in ii * row..(ii + 1) * row {
            self.w[k] = 0.0;
        }
        for c in 0..self.n_clusters {
            let live = use_all || self.cluster_ok[ii * self.n_clusters + c];
            self.cluster_sum[ii * self.n_clusters + c] =
                if live { per * slots as f64 } else { 0.0 };
            if live {
                let base = (ii * self.n_clusters + c) * self.n_slots;
                for t in lo..=hi {
                    self.w[base + t as usize] = per;
                }
            }
        }
        for t in 0..self.n_slots {
            let inside = (t as u32) >= lo && (t as u32) <= hi;
            self.time_sum[ii * self.n_slots + t] = if inside { per * n_live as f64 } else { 0.0 };
        }
        self.total[ii] = 1.0;
        self.scale[ii] = 1.0;
        self.argmax[ii].set(ArgmaxCache::INVALID);
    }

    /// Renormalizes every instruction — O(N) when every total is
    /// positive, since each `normalize` only updates the scale factor.
    pub fn normalize_all(&mut self) {
        for i in 0..self.n_instrs {
            self.normalize(InstrId::new(i as u32));
        }
    }

    /// Reshapes `i`'s cluster marginal to `target` (one entry per
    /// cluster; will be normalized internally), preserving each
    /// cluster's time profile. Clusters whose current weight is zero
    /// but whose target is positive receive a uniform time profile
    /// over the feasible window. Infeasible clusters stay at zero.
    ///
    /// This is the paper's "linear combination … only along the space
    /// dimension", used by PATHPROP.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != n_clusters`.
    pub fn set_cluster_marginal(&mut self, i: InstrId, target: &[f64]) {
        assert_eq!(target.len(), self.n_clusters, "one target per cluster");
        let ii = i.index();
        let mut masked = std::mem::take(&mut self.scratch);
        masked.clear();
        masked.extend((0..self.n_clusters).map(|c| {
            if self.cluster_ok[ii * self.n_clusters + c] {
                target[c].max(0.0)
            } else {
                0.0
            }
        }));
        let sum: f64 = masked.iter().sum();
        if sum <= EPS {
            self.scratch = masked;
            return; // nothing expressible: leave unchanged
        }
        let (lo, hi) = self.window[ii];
        let slots = (hi - lo + 1) as f64;
        for c in 0..self.n_clusters {
            let cid = ClusterId::new(c as u16);
            let want = masked[c] / sum;
            let cur = self.cluster_weight(i, cid);
            if cur > EPS {
                self.scale_cluster(i, cid, want / cur);
            } else if want > EPS {
                for t in lo..=hi {
                    self.set(i, cid, t, want / slots);
                }
            }
        }
        self.normalize(i);
        self.scratch = masked;
    }

    /// Checks both paper invariants to `tolerance`, plus the internal
    /// bookkeeping (marginals and total vs. the dense data); used by
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics (with context) if an invariant is broken.
    pub fn assert_invariants(&self, tolerance: f64) {
        for i in 0..self.n_instrs {
            let id = InstrId::new(i as u32);
            let mut sum = 0.0;
            for c in 0..self.n_clusters {
                let mut csum = 0.0;
                for t in 0..self.n_slots {
                    let v = self.get(id, ClusterId::new(c as u16), t as u32);
                    assert!(
                        (0.0 - tolerance..=1.0 + tolerance).contains(&v),
                        "W[i{i},c{c},t{t}] = {v} out of [0,1]"
                    );
                    sum += v;
                    csum += v;
                }
                let cw = self.cluster_weight(id, ClusterId::new(c as u16));
                assert!(
                    (cw - csum).abs() <= tolerance,
                    "cluster marginal {cw} != recomputed {csum} for i{i},c{c}"
                );
            }
            for t in 0..self.n_slots {
                let tsum: f64 = (0..self.n_clusters)
                    .map(|c| self.get(id, ClusterId::new(c as u16), t as u32))
                    .sum();
                let tw = self.time_weight(id, t as u32);
                assert!(
                    (tw - tsum).abs() <= tolerance,
                    "time marginal {tw} != recomputed {tsum} for i{i},t{t}"
                );
            }
            assert!(
                (sum - 1.0).abs() <= tolerance,
                "Σ W[i{i}] = {sum}, expected 1"
            );
            // Marginal bookkeeping must agree with the dense data.
            let tot = self.total(id);
            assert!(
                (tot - sum).abs() <= tolerance,
                "cached total {tot} != recomputed {sum} for i{i}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(k: u32) -> InstrId {
        InstrId::new(k)
    }

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn uniform_initialization() {
        let w = PreferenceMap::new(3, 4, 5);
        w.assert_invariants(1e-9);
        assert_eq!(w.get(i(0), c(0), 0), 1.0 / 20.0);
        assert_eq!(w.cluster_weight(i(1), c(2)), 0.25);
        assert_eq!(w.time_weight(i(2), 3), 0.2);
        assert_eq!(w.confidence(i(0)), 1.0);
        assert_eq!(w.preferred_cluster(i(0)), c(0)); // tie → lowest
        assert_eq!(w.preferred_time(i(0)), Cycle::ZERO);
    }

    #[test]
    fn scaling_updates_marginals() {
        let mut w = PreferenceMap::new(1, 2, 2);
        w.scale_cluster(i(0), c(1), 3.0);
        assert!((w.cluster_weight(i(0), c(1)) - 1.5).abs() < 1e-9);
        assert!((w.total(i(0)) - 2.0).abs() < 1e-9);
        assert_eq!(w.preferred_cluster(i(0)), c(1));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(1)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn scale_time_updates_marginals() {
        let mut w = PreferenceMap::new(1, 2, 3);
        w.scale_time(i(0), 2, 4.0);
        assert!((w.time_weight(i(0), 2) - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(w.preferred_time(i(0)), Cycle::new(2));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
    }

    #[test]
    fn window_squash_and_reset() {
        let mut w = PreferenceMap::new(1, 2, 10);
        w.set_window(i(0), 3, 5);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 0), 0.0);
        assert!(w.time_weight(i(0), 4) > 0.0);
        assert_eq!(w.window(i(0)), (3, 5));
        // Squash everything; normalize must resurrect only the window.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 2), 0.0);
        assert!(w.time_weight(i(0), 3) > 0.0);
    }

    #[test]
    fn repeated_windows_intersect() {
        let mut w = PreferenceMap::new(1, 2, 10);
        w.set_window(i(0), 2, 7);
        w.set_window(i(0), 4, 9);
        // Recorded window is the intersection, not the last call.
        assert_eq!(w.window(i(0)), (4, 7));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 3), 0.0);
        assert_eq!(w.time_weight(i(0), 8), 0.0);
        assert!(w.time_weight(i(0), 5) > 0.0);
        // A zero-weight reset stays inside the intersection too.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        assert_eq!(w.time_weight(i(0), 2), 0.0);
        assert!(w.time_weight(i(0), 4) > 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn disjoint_window_intersection_panics() {
        let mut w = PreferenceMap::new(1, 1, 10);
        w.set_window(i(0), 0, 2);
        w.set_window(i(0), 5, 7);
    }

    #[test]
    fn forbidden_cluster_stays_dead() {
        let mut w = PreferenceMap::new(1, 3, 4);
        w.forbid_cluster(i(0), c(1));
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        assert!(!w.cluster_feasible(i(0), c(1)));
        // Even a full reset keeps it dead.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(2), 0.0);
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        w.assert_invariants(1e-9);
    }

    #[test]
    fn confidence_ratio() {
        let mut w = PreferenceMap::new(1, 2, 1);
        // 0.8 vs 0.2 → confidence 4.
        w.set(i(0), c(0), 0, 0.8);
        w.set(i(0), c(1), 0, 0.2);
        assert!((w.confidence(i(0)) - 4.0).abs() < 1e-9);
        assert_eq!(w.runnerup_cluster(i(0)), Some(c(1)));
        // Zero runner-up → infinite confidence.
        w.set(i(0), c(1), 0, 0.0);
        assert!(w.confidence(i(0)).is_infinite());
    }

    #[test]
    fn single_cluster_confidence_is_infinite() {
        let w = PreferenceMap::new(1, 1, 4);
        assert!(w.confidence(i(0)).is_infinite());
        assert_eq!(w.runnerup_cluster(i(0)), None);
    }

    #[test]
    fn set_cluster_marginal_preserves_time_shape() {
        let mut w = PreferenceMap::new(1, 2, 2);
        // Give cluster 0 a skewed time profile: 0.4 at t0, 0.1 at t1.
        w.set(i(0), c(0), 0, 0.4);
        w.set(i(0), c(0), 1, 0.1);
        w.set(i(0), c(1), 0, 0.25);
        w.set(i(0), c(1), 1, 0.25);
        w.set_cluster_marginal(i(0), &[0.9, 0.1]);
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(0)) - 0.9).abs() < 1e-9);
        // Time shape inside cluster 0 unchanged: 4:1 ratio.
        let r = w.get(i(0), c(0), 0) / w.get(i(0), c(0), 1);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn set_cluster_marginal_revives_cluster_uniformly() {
        let mut w = PreferenceMap::new(1, 2, 4);
        w.set_window(i(0), 1, 2);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        w.set_cluster_marginal(i(0), &[0.5, 0.5]);
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(1)) - 0.5).abs() < 1e-9);
        // Revived uniformly inside the window only.
        assert_eq!(w.get(i(0), c(1), 0), 0.0);
        assert!(w.get(i(0), c(1), 1) > 0.0);
        assert_eq!(w.get(i(0), c(1), 3), 0.0);
    }

    #[test]
    fn set_cluster_marginal_respects_feasibility() {
        let mut w = PreferenceMap::new(1, 3, 2);
        w.forbid_cluster(i(0), c(2));
        w.normalize(i(0));
        w.set_cluster_marginal(i(0), &[0.2, 0.2, 0.6]);
        w.assert_invariants(1e-9);
        assert_eq!(w.cluster_weight(i(0), c(2)), 0.0);
        // Remaining mass split evenly between the feasible clusters.
        assert!((w.cluster_weight(i(0), c(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn add_clamps_at_zero() {
        let mut w = PreferenceMap::new(1, 1, 1);
        w.add(i(0), c(0), 0, -5.0);
        assert_eq!(w.get(i(0), c(0), 0), 0.0);
        w.add(i(0), c(0), 0, 0.25);
        assert_eq!(w.get(i(0), c(0), 0), 0.25);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn bad_window_panics() {
        let mut w = PreferenceMap::new(1, 1, 4);
        w.set_window(i(0), 3, 2);
    }

    #[test]
    #[should_panic(expected = "weights are ≥ 0")]
    fn negative_weight_panics() {
        let mut w = PreferenceMap::new(1, 1, 1);
        w.set(i(0), c(0), 0, -0.1);
    }

    #[test]
    fn normalize_all_is_idempotent() {
        let mut w = PreferenceMap::new(3, 2, 4);
        w.scale_cluster(i(1), c(0), 7.0);
        w.normalize_all();
        let snapshot = w.clone();
        w.normalize_all();
        for k in 0..3 {
            for cc in 0..2 {
                for t in 0..4 {
                    let a = snapshot.get(i(k), c(cc), t);
                    let b = w.get(i(k), c(cc), t);
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn normalize_is_o1_and_materialize_restores_raw() {
        let mut w = PreferenceMap::new(1, 2, 2);
        w.scale_cluster(i(0), c(1), 9.0);
        w.normalize(i(0));
        // Lazy: the visible values are normalized...
        w.assert_invariants(1e-12);
        let before: Vec<f64> = (0..2u16)
            .flat_map(|cc| (0..2u32).map(move |t| (cc, t)))
            .map(|(cc, t)| w.get(i(0), c(cc), t))
            .collect();
        // ...and materialize folds the factor in without changing them.
        w.materialize(i(0));
        let after: Vec<f64> = (0..2u16)
            .flat_map(|cc| (0..2u32).map(move |t| (cc, t)))
            .map(|(cc, t)| w.get(i(0), c(cc), t))
            .collect();
        assert_eq!(before, after);
        w.assert_invariants(1e-12);
        // After materialize the total is carried eagerly again.
        assert!((w.total(i(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_scaling_stays_finite_across_many_passes() {
        // Repeatedly multiply weight in (as PLACE's ×100 does) with a
        // normalize after every round, far past the point where a
        // naively accumulated raw total would overflow f64: the scale
        // guard must keep folding the factor back in.
        let mut w = PreferenceMap::new(1, 2, 2);
        for _ in 0..300 {
            w.scale_cluster(i(0), c(1), 100.0);
            w.scale_cluster(i(0), c(0), 100.0);
            w.normalize_all();
        }
        w.assert_invariants(1e-9);
        assert!(w.get(i(0), c(1), 0).is_finite());
        // Repeatedly squash a single cluster (forbid-like pressure);
        // normalize keeps redistributing onto the survivor.
        for _ in 0..300 {
            w.scale_cluster(i(0), c(1), 0.01);
            w.normalize_all();
        }
        w.assert_invariants(1e-9);
        assert_eq!(w.preferred_cluster(i(0)), c(0));
    }

    #[test]
    fn sustained_global_shrink_hits_the_fold_guard() {
        // Shrinking *everything* drives the raw total toward f64
        // underflow; the guard folds the scale in whenever it leaves
        // [1e-90, 1e90]. Visible cells, cluster marginals, and the
        // total stay exact because `scale_cluster` rebuilds them from
        // the cells; the time marginals are delta-maintained and may
        // drift under this pathological workload (as in an eager
        // implementation), so they are not checked here.
        let mut w = PreferenceMap::new(1, 2, 2);
        for _ in 0..300 {
            w.scale_cluster(i(0), c(0), 0.01);
            w.scale_cluster(i(0), c(1), 0.01);
            w.normalize_all();
        }
        let mut sum = 0.0;
        for cc in 0..2u16 {
            let mut csum = 0.0;
            for t in 0..2u32 {
                let v = w.get(i(0), c(cc), t);
                assert!(v.is_finite() && v >= 0.0);
                sum += v;
                csum += v;
            }
            assert!((w.cluster_weight(i(0), c(cc)) - csum).abs() < 1e-9);
        }
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((w.total(i(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cached_argmax_tracks_writes() {
        let mut w = PreferenceMap::new(1, 4, 6);
        // Prime the caches.
        assert_eq!(w.preferred_cluster(i(0)), c(0));
        assert_eq!(w.preferred_time(i(0)), Cycle::ZERO);
        // A write that changes the answers must be reflected.
        w.scale_cluster(i(0), c(2), 5.0);
        assert_eq!(w.preferred_cluster(i(0)), c(2));
        w.scale_time(i(0), 4, 5.0);
        assert_eq!(w.preferred_time(i(0)), Cycle::new(4));
        // Boosting the current leaders keeps the cache valid and true.
        w.scale_cluster(i(0), c(2), 2.0);
        w.scale_time(i(0), 4, 2.0);
        assert_eq!(w.preferred_cluster(i(0)), c(2));
        assert_eq!(w.preferred_time(i(0)), Cycle::new(4));
        // Normalization preserves the ordering.
        w.normalize_all();
        assert_eq!(w.preferred_cluster(i(0)), c(2));
        assert_eq!(w.preferred_time(i(0)), Cycle::new(4));
        // Runner-up and confidence come from the same cache.
        assert_ne!(w.runnerup_cluster(i(0)), Some(c(2)));
        assert!(w.confidence(i(0)) > 1.0);
        // A cell-level boost of another column updates the argmax.
        let big = w.total(i(0)) * 3.0;
        w.set(i(0), c(1), 1, big);
        assert_eq!(w.preferred_cluster(i(0)), c(1));
        assert_eq!(w.preferred_time(i(0)), Cycle::new(1));
        w.reset_uniform(i(0));
        assert_eq!(w.preferred_cluster(i(0)), c(0));
        assert_eq!(w.preferred_time(i(0)), Cycle::ZERO);
    }
}
