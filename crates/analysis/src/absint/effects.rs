//! Pass effect summaries and the per-pass contract prover.
//!
//! A [`PassEffect`] is a pass author's machine-checkable statement of
//! everything the pass can do to the preference map, phrased in the
//! abstract domain: each [`EffectOp`] over-approximates one family of
//! `WeightOp`s the pass may emit, with data-dependent magnitudes
//! widened to [`Interval`]s. [`prove_contract`] then decides each
//! clause of the declared [`ContractClaims`] by symbolic execution:
//!
//! * **window_respecting** — holds unless some absolute write can land
//!   outside a window with nonzero weight (scales cannot create weight
//!   where there is none: `0 · x = 0`).
//! * **preplacement_monotone** — holds when no op can take a positive
//!   home-cluster cell to zero: no unconditional `Forbid`, every scale
//!   factor strictly positive, every absolute write support-preserving.
//! * **normalization_preserving** — holds when every written value and
//!   factor is finite and non-negative, so the driver's normalization
//!   restores the invariants.
//! * **deterministic** — holds when the pass draws only on the graph
//!   and the seeded RNG.
//! * **establishes_windows** — holds when the summary contains an
//!   `EstablishWindows` op.
//!
//! Each rule answers [`Verdict::Proven`], [`Verdict::Unproven`] (the
//! summary is too coarse — fall back to the recording proxy), or
//! [`Verdict::RefutedStatic`] (the summary itself violates the claim;
//! no probe run is needed to reject the pass).

use crate::absint::domain::Interval;
use crate::{Code, Diagnostic};

/// Where a pass's behaviour draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Determinism {
    /// Only the graph, machine, and current map — replayable.
    PureGraph,
    /// Additionally consumes the driver-seeded RNG — replayable for a
    /// fixed seed.
    SeededRng,
    /// Reads clocks, ambient state, or other unseeded inputs.
    External,
}

/// One abstract operation family a pass may perform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EffectOp {
    /// Establishes feasibility windows and squashes weight outside
    /// them (INITTIME's `set_window`).
    EstablishWindows,
    /// An absolute write (`set`/`add`) of a value in `value`.
    Absolute {
        /// Every such write targets a cell inside the instruction's
        /// feasible window.
        in_window: bool,
        /// Range of the written value.
        value: Interval,
        /// The written value consumes RNG draws.
        randomized: bool,
        /// The write never takes a positive cell to zero (e.g. an
        /// additive nudge, or a blend keeping a fraction of the old
        /// value).
        preserves_support: bool,
    },
    /// Scales whole cluster columns by a factor in `factor`.
    ScaleClusters {
        /// Range of the multiplicative factor.
        factor: Interval,
    },
    /// Scales individual `(c, t)` cells by a factor in `factor`.
    ScaleCells {
        /// Range of the multiplicative factor.
        factor: Interval,
    },
    /// Scales whole time rows by a factor in `factor`.
    ScaleTimes {
        /// Range of the multiplicative factor.
        factor: Interval,
    },
    /// Zeroes a cluster column outright.
    Forbid {
        /// The pass only forbids clusters that cannot execute the
        /// instruction (never a capable preplacement home).
        only_incapable: bool,
    },
    /// Explicitly renormalizes rows (the driver does this after every
    /// pass anyway).
    Normalize,
}

/// The full effect summary of one pass.
#[derive(Clone, Debug, PartialEq)]
pub struct PassEffect {
    /// Every operation family the pass can emit, in program order.
    pub ops: Vec<EffectOp>,
    /// What the behaviour depends on.
    pub determinism: Determinism,
    /// The pass reads current feasibility windows (to guard writes or
    /// choose targets).
    pub reads_windows: bool,
    /// The pass can make cluster marginals differ on a fully uniform
    /// map (break argmax ties away from cluster 0).
    pub breaks_symmetry: bool,
    /// The pass adjusts only temporal preferences.
    pub time_only: bool,
    /// No summary is available; every clause is [`Verdict::Unproven`].
    pub opaque: bool,
}

impl PassEffect {
    /// The absent summary: nothing is known, every contract clause
    /// falls back to the empirical recording-proxy check.
    #[must_use]
    pub fn opaque() -> Self {
        PassEffect {
            ops: Vec::new(),
            determinism: Determinism::PureGraph,
            reads_windows: false,
            breaks_symmetry: false,
            time_only: false,
            opaque: true,
        }
    }

    /// A summary with the given ops, deterministic from the graph
    /// alone, with the remaining facts defaulted off.
    #[must_use]
    pub fn new(ops: Vec<EffectOp>) -> Self {
        PassEffect {
            ops,
            determinism: Determinism::PureGraph,
            reads_windows: false,
            breaks_symmetry: false,
            time_only: false,
            opaque: false,
        }
    }

    /// Sets the determinism class.
    #[must_use]
    pub fn with_determinism(mut self, d: Determinism) -> Self {
        self.determinism = d;
        self
    }

    /// Marks the pass as reading feasibility windows.
    #[must_use]
    pub fn reads_windows(mut self) -> Self {
        self.reads_windows = true;
        self
    }

    /// Marks the pass as able to break cluster symmetry.
    #[must_use]
    pub fn breaks_symmetry(mut self) -> Self {
        self.breaks_symmetry = true;
        self
    }

    /// Marks the pass as time-only.
    #[must_use]
    pub fn time_only(mut self) -> Self {
        self.time_only = true;
        self
    }
}

/// The five contract clauses a pass claims, mirroring
/// `convergent_core::PassContract` without depending on it (core
/// depends on this crate, not the other way around).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContractClaims {
    /// The pass establishes feasibility windows.
    pub establishes_windows: bool,
    /// Absolute writes stay inside feasible windows.
    pub window_respecting: bool,
    /// Same input and seed, same operation log.
    pub deterministic: bool,
    /// Map invariants hold after the pass plus driver normalization.
    pub normalization_preserving: bool,
    /// Never forbids a capable preplacement home.
    pub preplacement_monotone: bool,
}

impl Default for ContractClaims {
    fn default() -> Self {
        ContractClaims {
            establishes_windows: false,
            window_respecting: true,
            deterministic: true,
            normalization_preserving: true,
            preplacement_monotone: true,
        }
    }
}

/// The outcome of trying to prove one contract clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The clause holds for all inputs.
    Proven,
    /// The summary is too coarse (or absent) to decide; the empirical
    /// recording-proxy check must decide.
    Unproven,
    /// The summary itself violates the clause; the pass is rejected
    /// without running anything.
    RefutedStatic,
}

/// Per-clause verdicts for one pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContractProof {
    /// Verdict for `window_respecting`.
    pub window_respecting: Verdict,
    /// Verdict for `preplacement_monotone`.
    pub preplacement_monotone: Verdict,
    /// Verdict for `normalization_preserving`.
    pub normalization_preserving: Verdict,
    /// Verdict for `deterministic`.
    pub deterministic: Verdict,
    /// Verdict for `establishes_windows`.
    pub establishes_windows: Verdict,
}

impl ContractProof {
    /// The five verdicts as `(clause name, verdict)` pairs.
    #[must_use]
    pub fn clauses(&self) -> [(&'static str, Verdict); 5] {
        [
            ("window_respecting", self.window_respecting),
            ("preplacement_monotone", self.preplacement_monotone),
            ("normalization_preserving", self.normalization_preserving),
            ("deterministic", self.deterministic),
            ("establishes_windows", self.establishes_windows),
        ]
    }

    /// `true` when every clause is [`Verdict::Proven`].
    #[must_use]
    pub fn all_proven(&self) -> bool {
        self.clauses().iter().all(|&(_, v)| v == Verdict::Proven)
    }

    /// `(proven, unproven, refuted)` clause counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for (_, v) in self.clauses() {
            match v {
                Verdict::Proven => c.0 += 1,
                Verdict::Unproven => c.1 += 1,
                Verdict::RefutedStatic => c.2 += 1,
            }
        }
        c
    }
}

/// One pass of a sequence, as the analyzer sees it: its name, the
/// contract it claims, and its effect summary.
#[derive(Clone, Debug, PartialEq)]
pub struct PassSummary {
    /// The pass's display name ("INITTIME", "NOISE", ...).
    pub name: String,
    /// The contract the pass claims.
    pub claims: ContractClaims,
    /// The declared effect summary.
    pub effect: PassEffect,
}

impl PassSummary {
    /// Bundles a name, claims, and effect.
    #[must_use]
    pub fn new(name: impl Into<String>, claims: ContractClaims, effect: PassEffect) -> Self {
        PassSummary {
            name: name.into(),
            claims,
            effect,
        }
    }
}

/// Attempts to prove every claimed contract clause of `pass` from its
/// effect summary alone. Returns the per-clause verdicts plus one
/// diagnostic per statically refuted clause; an unclaimed clause is
/// vacuously [`Verdict::Proven`].
#[must_use]
pub fn prove_contract(pass: &PassSummary) -> (ContractProof, Vec<Diagnostic>) {
    let claims = &pass.claims;
    let eff = &pass.effect;
    let mut diags = Vec::new();

    let window_respecting = if !claims.window_respecting || claims.establishes_windows {
        // Either unclaimed, or the pass defines feasibility itself and
        // the clause is checked against the windows it creates.
        Verdict::Proven
    } else if eff.opaque {
        Verdict::Unproven
    } else {
        let escapes = eff.ops.iter().any(|op| {
            matches!(
                op,
                EffectOp::Absolute {
                    in_window: false,
                    value,
                    ..
                } if value.hi > 0.0
            )
        });
        if escapes {
            diags.push(Diagnostic::new(
                Code::OutOfWindowWrite,
                vec![],
                format!(
                    "pass {} declares an absolute write outside feasible windows; \
                     window_respecting is statically refuted",
                    pass.name
                ),
            ));
            Verdict::RefutedStatic
        } else {
            Verdict::Proven
        }
    };

    let preplacement_monotone = if !claims.preplacement_monotone {
        Verdict::Proven
    } else if eff.opaque {
        Verdict::Unproven
    } else {
        let mut verdict = Verdict::Proven;
        for op in &eff.ops {
            match op {
                EffectOp::Forbid {
                    only_incapable: false,
                } => {
                    diags.push(Diagnostic::new(
                        Code::PreplacementDemoted,
                        vec![],
                        format!(
                            "pass {} declares an unconditional cluster forbid; \
                             preplacement_monotone is statically refuted",
                            pass.name
                        ),
                    ));
                    verdict = Verdict::RefutedStatic;
                    break;
                }
                EffectOp::ScaleClusters { factor }
                | EffectOp::ScaleCells { factor }
                | EffectOp::ScaleTimes { factor }
                    if !factor.is_positive() =>
                {
                    // A zero factor could zero the home cluster, but
                    // only refutes if it actually targets one — too
                    // coarse to decide statically.
                    verdict = Verdict::Unproven;
                }
                EffectOp::Absolute {
                    preserves_support: false,
                    ..
                } => {
                    verdict = Verdict::Unproven;
                }
                _ => {}
            }
        }
        verdict
    };

    let normalization_preserving = if !claims.normalization_preserving {
        Verdict::Proven
    } else if eff.opaque {
        Verdict::Unproven
    } else {
        let mut verdict = Verdict::Proven;
        for op in &eff.ops {
            let bad = match op {
                EffectOp::Absolute { value, .. } => !value.is_finite() || !value.is_nonneg(),
                EffectOp::ScaleClusters { factor }
                | EffectOp::ScaleCells { factor }
                | EffectOp::ScaleTimes { factor } => !factor.is_finite() || !factor.is_nonneg(),
                EffectOp::EstablishWindows | EffectOp::Forbid { .. } | EffectOp::Normalize => false,
            };
            if bad {
                diags.push(Diagnostic::new(
                    Code::BrokenNormalization,
                    vec![],
                    format!(
                        "pass {} declares a non-finite or negative write; \
                         normalization_preserving is statically refuted",
                        pass.name
                    ),
                ));
                verdict = Verdict::RefutedStatic;
                break;
            }
        }
        verdict
    };

    let deterministic = if !claims.deterministic {
        Verdict::Proven
    } else if eff.opaque {
        Verdict::Unproven
    } else {
        match eff.determinism {
            Determinism::PureGraph | Determinism::SeededRng => Verdict::Proven,
            Determinism::External => {
                diags.push(Diagnostic::new(
                    Code::NondeterministicPass,
                    vec![],
                    format!(
                        "pass {} declares unseeded external inputs; \
                         deterministic is statically refuted",
                        pass.name
                    ),
                ));
                Verdict::RefutedStatic
            }
        }
    };

    let establishes_windows = if !claims.establishes_windows {
        Verdict::Proven
    } else if eff.opaque {
        Verdict::Unproven
    } else if eff.ops.contains(&EffectOp::EstablishWindows) {
        Verdict::Proven
    } else {
        // Claimed but absent from the summary: the summary may simply
        // be incomplete, so this is never a static refutation.
        Verdict::Unproven
    };

    (
        ContractProof {
            window_respecting,
            preplacement_monotone,
            normalization_preserving,
            deterministic,
            establishes_windows,
        },
        diags,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(effect: PassEffect) -> PassSummary {
        PassSummary::new("TEST", ContractClaims::default(), effect)
    }

    #[test]
    fn opaque_effect_is_fully_unproven_except_vacuous() {
        let (proof, diags) = prove_contract(&summary(PassEffect::opaque()));
        assert!(diags.is_empty());
        assert_eq!(proof.window_respecting, Verdict::Unproven);
        assert_eq!(proof.deterministic, Verdict::Unproven);
        // establishes_windows unclaimed -> vacuously proven.
        assert_eq!(proof.establishes_windows, Verdict::Proven);
    }

    #[test]
    fn clean_scale_pass_is_fully_proven() {
        let eff = PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::point(1.2),
        }]);
        let (proof, diags) = prove_contract(&summary(eff));
        assert!(diags.is_empty());
        assert!(proof.all_proven(), "{proof:?}");
    }

    #[test]
    fn out_of_window_write_is_statically_refuted() {
        let eff = PassEffect::new(vec![EffectOp::Absolute {
            in_window: false,
            value: Interval::point(0.9),
            randomized: false,
            preserves_support: true,
        }]);
        let (proof, diags) = prove_contract(&summary(eff));
        assert_eq!(proof.window_respecting, Verdict::RefutedStatic);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::OutOfWindowWrite);
        assert!(diags[0].message.contains("statically"));
    }

    #[test]
    fn zero_valued_out_of_window_write_is_harmless() {
        let eff = PassEffect::new(vec![EffectOp::Absolute {
            in_window: false,
            value: Interval::point(0.0),
            randomized: false,
            preserves_support: true,
        }]);
        let (proof, _) = prove_contract(&summary(eff));
        assert_eq!(proof.window_respecting, Verdict::Proven);
    }

    #[test]
    fn unconditional_forbid_refutes_monotone() {
        let eff = PassEffect::new(vec![EffectOp::Forbid {
            only_incapable: false,
        }]);
        let (proof, diags) = prove_contract(&summary(eff));
        assert_eq!(proof.preplacement_monotone, Verdict::RefutedStatic);
        assert_eq!(diags[0].code, Code::PreplacementDemoted);
    }

    #[test]
    fn zero_factor_scale_is_unproven_not_refuted() {
        let eff = PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::new(0.0, 1.0),
        }]);
        let (proof, diags) = prove_contract(&summary(eff));
        assert_eq!(proof.preplacement_monotone, Verdict::Unproven);
        assert!(diags.is_empty());
    }

    #[test]
    fn infinite_factor_refutes_normalization() {
        let eff = PassEffect::new(vec![EffectOp::ScaleTimes {
            factor: Interval::new(1.0, f64::INFINITY),
        }]);
        let (proof, diags) = prove_contract(&summary(eff));
        assert_eq!(proof.normalization_preserving, Verdict::RefutedStatic);
        assert_eq!(diags[0].code, Code::BrokenNormalization);
    }

    #[test]
    fn external_determinism_is_refuted() {
        let eff = PassEffect::new(vec![]).with_determinism(Determinism::External);
        let (proof, diags) = prove_contract(&summary(eff));
        assert_eq!(proof.deterministic, Verdict::RefutedStatic);
        assert_eq!(diags[0].code, Code::NondeterministicPass);
    }

    #[test]
    fn claimed_windows_without_op_is_unproven() {
        let claims = ContractClaims {
            establishes_windows: true,
            ..ContractClaims::default()
        };
        let pass = PassSummary::new("T", claims, PassEffect::new(vec![]));
        let (proof, diags) = prove_contract(&pass);
        assert_eq!(proof.establishes_windows, Verdict::Unproven);
        assert!(diags.is_empty());
        let pass = PassSummary::new(
            "T",
            claims,
            PassEffect::new(vec![EffectOp::EstablishWindows]),
        );
        let (proof, _) = prove_contract(&pass);
        assert_eq!(proof.establishes_windows, Verdict::Proven);
    }

    #[test]
    fn proof_counts_add_up() {
        let (proof, _) = prove_contract(&summary(PassEffect::opaque()));
        let (p, u, r) = proof.counts();
        assert_eq!(p + u + r, 5);
        assert_eq!(r, 0);
    }
}
