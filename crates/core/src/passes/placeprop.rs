//! PLACEPROP — preplacement propagation.
//!
//! "This pass propagates preplacement information to all instructions.
//! For each non-preplaced instruction `i`, we divide its weight for
//! each cluster `c` by its distance to the closest preplaced
//! instruction in `c`":
//!
//! ```text
//! ∀ (i ∉ PREPLACED, t, c):  W[i, t, c] ← W[i, t, c] / dist(i, c)
//! ```
//!
//! Distances are undirected graph distances (multi-source BFS from
//! each cluster's preplaced set). Two boundary cases the paper leaves
//! implicit: clusters with no preplaced instruction at all, and
//! instructions in a different connected component from every
//! preplaced instruction of a cluster. Both are charged the worst
//! finite distance plus one, so "no information" is strictly worse
//! than "far". If the unit has no preplaced instructions the pass is a
//! no-op (sha, fpppp-kernel).

use std::collections::VecDeque;

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::{ClusterId, Dag, InstrId, TimeAnalysis, UNREACHABLE};
use convergent_machine::Machine;
use rand::rngs::StdRng;

use crate::weights::RowOps;
use crate::{Pass, PassContext, PassScratch, PreferenceMap, RowKernel};

/// The PLACEPROP pass. See the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlaceProp;

impl PlaceProp {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        PlaceProp
    }
}

/// The data-parallel half of PLACEPROP: the precomputed per-row
/// divisor factors. Preplaced instructions are skipped outright (no
/// scale ops at all), matching the historical loop.
struct PlacePropKernel<'k> {
    dag: &'k Dag,
    /// Row-major `n_instrs × n_clusters` scale factors
    /// (`1 / dist(i, c)` with the boundary cases folded in).
    factors: &'k [f64],
    n_clusters: usize,
}

impl RowKernel for PlacePropKernel<'_> {
    fn apply(&self, rows: &mut dyn RowOps) {
        let nc = self.n_clusters;
        for i in rows.instr_range() {
            let id = InstrId::new(i);
            if self.dag.instr(id).is_preplaced() {
                continue;
            }
            let ii = i as usize;
            rows.scale_clusters_row(id, &self.factors[ii * nc..(ii + 1) * nc]);
        }
    }
}

impl Pass for PlaceProp {
    fn name(&self) -> &'static str {
        "PLACEPROP"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        if let Some(kernel) = self.row_kernel(
            ctx.dag,
            ctx.machine,
            ctx.time,
            ctx.rng,
            ctx.weights,
            ctx.scratch,
        ) {
            kernel.apply(ctx.weights);
        }
    }

    fn row_kernel<'k>(
        &self,
        dag: &'k Dag,
        _machine: &'k Machine,
        _time: &'k TimeAnalysis,
        _rng: &mut StdRng,
        weights: &PreferenceMap,
        scratch: &'k mut PassScratch,
    ) -> Option<Box<dyn RowKernel + 'k>> {
        if dag.preplaced_count() == 0 {
            return None;
        }
        let n_clusters = weights.n_clusters();
        let dist = preplacement_distance_fields(dag, n_clusters);
        let worst = dist
            .iter()
            .flatten()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
            + 1;
        let factors = &mut scratch.a;
        factors.clear();
        factors.resize(dag.len() * n_clusters, 1.0);
        for i in dag.ids() {
            if dag.instr(i).is_preplaced() {
                continue;
            }
            for c in 0..n_clusters {
                let d = dist[c][i.index()];
                let divisor = if d == UNREACHABLE { worst } else { d.max(1) };
                factors[i.index() * n_clusters + c] = 1.0 / f64::from(divisor);
            }
        }
        let scratch: &'k PassScratch = scratch;
        Some(Box::new(PlacePropKernel {
            dag,
            factors: &scratch.a,
            n_clusters,
        }))
    }

    fn effect(&self) -> PassEffect {
        // `1 / dist(i, c)` with distances floored at 1 and capped by
        // the worst finite distance plus one: factors in (0, 1].
        // Distances differ per cluster, so the pass pulls ties apart.
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::new(1.0 / (f64::from(u32::MAX) + 1.0), 1.0),
        }])
        .breaks_symmetry()
    }
}

/// `dist[c][i]` = undirected distance from `i` to the nearest
/// instruction preplaced on cluster `c`.
fn preplacement_distance_fields(dag: &Dag, n_clusters: usize) -> Vec<Vec<u32>> {
    let mut out = vec![vec![UNREACHABLE; dag.len()]; n_clusters];
    for (c, dist) in out.iter_mut().enumerate() {
        let mut q = VecDeque::new();
        for i in dag.preplaced() {
            if dag.instr(i).preplacement() == Some(ClusterId::new(c as u16)) {
                dist[i.index()] = 0;
                q.push_back(i);
            }
        }
        while let Some(i) = q.pop_front() {
            let d = dist[i.index()];
            for nb in dag.neighbors(i) {
                if dist[nb.index()] == UNREACHABLE {
                    dist[nb.index()] = d + 1;
                    q.push_back(nb);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_machine::Machine;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn neighbors_pulled_toward_nearest_home() {
        // ld@c0 -> a -> b -> st@c1 : a leans to 0, b leans to 1.
        let mut bld = DagBuilder::new();
        let ld = bld.preplaced_instr(Opcode::Load, c(0));
        let a = bld.instr(Opcode::IntAlu);
        let b = bld.instr(Opcode::IntAlu);
        let st = bld.preplaced_instr(Opcode::Store, c(1));
        bld.edge(ld, a).unwrap();
        bld.edge(a, b).unwrap();
        bld.edge(b, st).unwrap();
        let dag = bld.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&PlaceProp::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_cluster(a), c(0));
        assert_eq!(rig.weights.preferred_cluster(b), c(1));
        // a is 1 away from c0's load, 2 away from c1's store:
        // weights divided by 1 vs 2 → confidence 2.
        assert!((rig.weights.confidence(a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn preplaced_instructions_are_left_alone() {
        let mut bld = DagBuilder::new();
        let ld = bld.preplaced_instr(Opcode::Load, c(0));
        let a = bld.instr(Opcode::IntAlu);
        bld.edge(ld, a).unwrap();
        let dag = bld.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&PlaceProp::new());
        // PLACEPROP itself does not bias the preplaced instruction
        // (that is PLACE's job).
        assert!((rig.weights.confidence(ld) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clusters_without_preplacement_are_penalized() {
        let mut bld = DagBuilder::new();
        let ld = bld.preplaced_instr(Opcode::Load, c(0));
        let a = bld.instr(Opcode::IntAlu);
        bld.edge(ld, a).unwrap();
        let dag = bld.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.run(&PlaceProp::new());
        // Cluster 0 (divisor 1) beats clusters 1..3 (divisor worst=2).
        assert_eq!(rig.weights.preferred_cluster(a), c(0));
        for k in 1..4 {
            assert!(rig.weights.cluster_weight(a, c(k)) < rig.weights.cluster_weight(a, c(0)));
        }
    }

    #[test]
    fn no_preplacement_is_identity() {
        let mut bld = DagBuilder::new();
        let x = bld.instr(Opcode::IntAlu);
        let dag = bld.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.run(&PlaceProp::new());
        assert!((rig.weights.confidence(x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_component_gets_finite_worst_divisor() {
        // Two weakly-connected components; only one contains a
        // preplaced instruction. Instructions in the other component
        // are UNREACHABLE from every anchor — the distance field's
        // sentinel must degrade to the finite worst-case divisor, not
        // leak u32::MAX into the weights.
        let mut bld = DagBuilder::new();
        let ld = bld.preplaced_instr(Opcode::Load, c(0));
        let a = bld.instr(Opcode::IntAlu);
        bld.edge(ld, a).unwrap();
        let x = bld.instr(Opcode::IntAlu);
        let y = bld.instr(Opcode::IntAlu);
        bld.edge(x, y).unwrap();
        let dag = bld.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&PlaceProp::new());
        rig.weights.assert_invariants(1e-9);
        for i in [x, y] {
            for k in 0..2 {
                let w = rig.weights.cluster_weight(i, c(k));
                assert!(w.is_finite() && w > 0.0, "{i} c{k}: {w}");
            }
            // Both clusters use the same worst-case divisor in the
            // island component, so neither is preferred.
            assert!((rig.weights.confidence(i) - 1.0).abs() < 1e-9, "{i}");
        }
        // The anchored component still converges on the home cluster.
        assert_eq!(rig.weights.preferred_cluster(a), c(0));
    }
}
