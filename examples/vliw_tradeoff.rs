//! The locality-vs-parallelism tradeoff of the paper's Figure 1.
//!
//! "Consider an architecture with three clusters, each with one
//! functional unit, where communication takes one cycle of latency. …
//! conservative partitioning that maximizes locality leads to an
//! eight-cycle schedule; aggressive partitioning has high
//! communication requirements; the optimal schedule is a careful
//! tradeoff between locality and parallelism."
//!
//! This example builds such a machine and kernel, schedules it under
//! (a) everything-on-one-cluster, (b) aggressive round-robin
//! splitting, and (c) the convergent scheduler, and prints the cycle
//! counts.
//!
//! ```text
//! cargo run --example vliw_tradeoff
//! ```

use convergent_scheduling::machine::{
    Cluster, CommModel, FuKind, LatencyTable, MemoryModel, Topology,
};
use convergent_scheduling::prelude::*;
use convergent_scheduling::schedulers::ListScheduler;
use convergent_scheduling::sim::Assignment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three single-FU clusters, one-cycle register-mapped transfers —
    // Figure 1's machine.
    let machine = Machine::new(
        "figure1",
        vec![Cluster::new(vec![FuKind::Universal]); 3],
        Topology::PointToPoint,
        CommModel {
            base_latency: 1,
            per_hop: 0,
            register_mapped: true,
        },
        LatencyTable::uniform(1),
        MemoryModel::chorus(),
    );

    // Eight single-cycle operations: a five-deep chain, a two-op side
    // chain joining it, and one independent feeder.
    let mut b = DagBuilder::new();
    let a1 = b.instr(Opcode::IntMul);
    let a2 = b.instr(Opcode::IntAlu);
    let a3 = b.instr(Opcode::IntMul);
    let a4 = b.instr(Opcode::IntAlu);
    let a5 = b.instr(Opcode::IntMul);
    let b1 = b.instr(Opcode::IntAlu);
    let b2 = b.instr(Opcode::IntAlu);
    let c1 = b.instr(Opcode::IntAlu);
    for (x, y) in [
        (a1, a2),
        (a2, a3),
        (a3, a4),
        (a4, a5),
        (b1, b2),
        (b2, a4),
        (c1, a3),
    ] {
        b.edge(x, y)?;
    }
    let dag = b.build()?;

    let lister = ListScheduler::new();
    let cycles = |assignment: &Assignment| -> Result<u32, Box<dyn std::error::Error>> {
        let s = lister.schedule_with_cp(&dag, &machine, assignment)?;
        validate(&dag, &machine, &s)?;
        Ok(s.makespan().get())
    };

    // (a) Conservative: maximize locality, zero communication.
    let conservative = Assignment::uniform(dag.len(), ClusterId::new(0));
    // (b) Aggressive: spray instructions round-robin; every dependence
    // edge crosses clusters.
    let aggressive: Assignment = dag
        .ids()
        .map(|i| ClusterId::new((i.raw() % 3) as u16))
        .collect();
    // (c) Convergent scheduling balances the two.
    let conv = ConvergentScheduler::vliw_tuned().schedule(&dag, &machine)?;
    validate(&dag, &machine, conv.schedule())?;

    let a = cycles(&conservative)?;
    let g = cycles(&aggressive)?;
    let c = conv.schedule().makespan().get();
    println!("conservative (all on one cluster): {a} cycles");
    println!("aggressive   (round-robin spray):  {g} cycles");
    println!("convergent   (balanced tradeoff):  {c} cycles");
    assert!(
        c < a && c < g,
        "the balanced schedule must beat both extremes ({c} vs {a}/{g})"
    );
    Ok(())
}
