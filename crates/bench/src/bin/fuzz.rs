//! Cross-scheduler differential fuzzer.
//!
//! Sweeps deterministic pseudo-random and adversarial dependence
//! graphs across machine presets and all five schedulers, holding
//! every produced schedule to the full referee pair:
//!
//! 1. the schedule must pass `validate()`;
//! 2. the cycle-driven evaluator and the event-driven oracle must
//!    execute it and agree on every reported quantity
//!    (`convergent_sim::cross_check`);
//! 3. nothing may panic.
//!
//! A scheduler may *reject* a graph for a legitimate structural reason
//! (no capable cluster, out-of-range home bank); anything else — an
//! invalid schedule, a simulator disagreement, a panic — is a bug.
//! The first failure per scheduler is greedily shrunk to a minimal
//! graph and dumped as a replayable `.cdag` repro:
//!
//! ```text
//! cargo run --release -p convergent-bench --bin fuzz -- \
//!     [--seed N] [--budget N] [--jobs N] [--dump-dir PATH] \
//!     [--family NAME] [--size N] [--machines a,b,c]
//! csched verify <dump-dir>/<repro>.cdag --machine <spec> --scheduler <name>
//! ```
//!
//! The whole sweep is deterministic for a given `--seed`/`--budget`,
//! independent of `--jobs`. `--family`, `--size`, and `--machines` pin
//! or restrict the corresponding case dimension — the targeted mode
//! the check scripts use to drive one large deep-chain unit through
//! every scheduler (exercising the preference map's band re-anchoring
//! end to end) without paying for a full random sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};

use convergent_bench::parallel::{default_jobs, jobs_from_args, run_cells};
use convergent_core::ConvergentScheduler;
use convergent_ir::{to_text, ClusterId, Dag, DagBuilder, Instruction, Opcode, SchedulingUnit};
use convergent_machine::Machine;
use convergent_schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, ScheduleError, Scheduler, UasScheduler,
};
use convergent_sim::{cross_check, validate};
use convergent_workloads::{
    deep_chain, fully_preplaced, layered, op_class_desert, parallel_chains, series_parallel,
    wide_fanin, LayeredParams,
};

/// Machine presets swept by the fuzzer: every Raw tile count the
/// router handles, the Chorus VLIW widths from the paper, and the
/// single-cluster degenerate machine.
const MACHINES: &[&str] = &[
    "raw1", "raw2", "raw3", "raw4", "raw5", "raw6", "raw7", "raw8", "raw9", "raw10", "raw11",
    "raw12", "raw13", "raw14", "raw15", "raw16", "vliw1", "vliw2", "vliw4", "vliw8",
];

const SCHEDULERS: &[&str] = &["convergent", "uas", "pcc", "rawcc", "bug"];

fn machine_from_spec(spec: &str) -> Machine {
    if let Some(n) = spec.strip_prefix("raw") {
        return Machine::raw(n.parse().expect("preset specs parse"));
    }
    if let Some(n) = spec.strip_prefix("vliw") {
        return Machine::chorus_vliw(n.parse().expect("preset specs parse"));
    }
    unreachable!("presets are rawN/vliwN");
}

fn make_scheduler(name: &str, machine: &Machine) -> Box<dyn Scheduler> {
    match name {
        "convergent" => {
            if machine.comm().register_mapped {
                Box::new(ConvergentScheduler::raw_default())
            } else {
                Box::new(ConvergentScheduler::vliw_tuned())
            }
        }
        "uas" => Box::new(UasScheduler::new()),
        // Capped rounds keep the sweep fast without changing what the
        // referees check.
        "pcc" => Box::new(PccScheduler::new().with_max_rounds(2)),
        "rawcc" => Box::new(RawccScheduler::new()),
        "bug" => Box::new(BugScheduler::new()),
        other => unreachable!("unknown scheduler {other}"),
    }
}

/// SplitMix64: a tiny, high-quality deterministic generator so the
/// harness does not depend on the `rand` crate at run time.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FAMILIES: &[&str] = &[
    "layered",
    "layered-preplaced",
    "series-parallel",
    "parallel-chains",
    "deep-chain",
    "wide-fanin",
    "fully-preplaced",
    "op-class-desert",
];

fn build_unit(family: &str, size: usize, banks: u16, seed: u64) -> SchedulingUnit {
    match family {
        "layered" => layered(LayeredParams::new(size, seed).with_width(1 + size / 8)),
        "layered-preplaced" => layered(
            LayeredParams::new(size, seed)
                .with_width(1 + size / 10)
                .with_preplacement(0.5, banks),
        ),
        "series-parallel" => series_parallel(size, seed),
        "parallel-chains" => parallel_chains(1 + size / 10, 1 + size % 10),
        "deep-chain" => deep_chain(size),
        "wide-fanin" => wide_fanin(size, banks, seed),
        "fully-preplaced" => fully_preplaced(size, banks, seed),
        "op-class-desert" => op_class_desert(size, seed),
        other => unreachable!("unknown family {other}"),
    }
}

/// One (graph, machine) cell of the sweep.
struct Case {
    id: usize,
    family: &'static str,
    machine_spec: &'static str,
    size: usize,
    unit_seed: u64,
}

/// What went wrong for one scheduler on one case.
struct Failure {
    case_id: usize,
    family: &'static str,
    machine_spec: &'static str,
    scheduler: &'static str,
    message: String,
}

struct CaseOutcome {
    schedules: usize,
    rejects: usize,
    failures: Vec<Failure>,
}

/// A structural rejection is a legitimate answer; anything else the
/// scheduler reports is a bug in the scheduler itself.
fn is_legit_reject(e: &ScheduleError) -> bool {
    matches!(
        e,
        ScheduleError::NoCapableCluster(_)
            | ScheduleError::BadHomeCluster { .. }
            | ScheduleError::PreplacementConflict { .. }
            | ScheduleError::LengthMismatch { .. }
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs one scheduler through the full referee pair on one graph.
/// Returns `Ok(true)` when a schedule was produced and agreed on,
/// `Ok(false)` for a legitimate rejection, `Err(message)` for a bug.
fn check_one(unit: &SchedulingUnit, machine: &Machine, scheduler: &str) -> Result<bool, String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let sched = make_scheduler(scheduler, machine);
        let schedule = match sched.schedule(unit.dag(), machine) {
            Ok(s) => s,
            Err(e) if is_legit_reject(&e) => return Ok(false),
            Err(e) => return Err(format!("scheduler error: {e}")),
        };
        if let Err(e) = validate(unit.dag(), machine, &schedule) {
            return Err(format!("validation: {e}"));
        }
        match cross_check(unit.dag(), machine, &schedule) {
            Ok(Ok(_)) => Ok(true),
            Ok(Err(e)) => Err(format!("simulation: {e}")),
            Err(d) => Err(format!("cross-check: {d}")),
        }
    }));
    match result {
        Ok(r) => r,
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn run_case(case: &Case) -> CaseOutcome {
    let machine = machine_from_spec(case.machine_spec);
    let unit = build_unit(
        case.family,
        case.size,
        machine.n_clusters() as u16,
        case.unit_seed,
    );
    let mut out = CaseOutcome {
        schedules: 0,
        rejects: 0,
        failures: Vec::new(),
    };
    for &scheduler in SCHEDULERS {
        match check_one(&unit, &machine, scheduler) {
            Ok(true) => out.schedules += 1,
            Ok(false) => out.rejects += 1,
            Err(message) => out.failures.push(Failure {
                case_id: case.id,
                family: case.family,
                machine_spec: case.machine_spec,
                scheduler,
                message,
            }),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Shrinking: greedily delete instructions and edges while the failure
// reproduces, then dump the minimal graph as a replayable .cdag.
// ---------------------------------------------------------------------

/// A dependence graph as plain data the shrinker can edit.
#[derive(Clone)]
struct DagSpec {
    instrs: Vec<(Opcode, Option<ClusterId>)>,
    edges: Vec<(usize, usize)>,
}

impl DagSpec {
    fn of(dag: &Dag) -> Self {
        DagSpec {
            instrs: dag
                .instrs()
                .iter()
                .map(|i| (i.opcode(), i.preplacement()))
                .collect(),
            edges: dag
                .edges()
                .map(|e| (e.src.index(), e.dst.index()))
                .collect(),
        }
    }

    fn build(&self) -> Option<Dag> {
        if self.instrs.is_empty() {
            return None;
        }
        let mut b = DagBuilder::with_capacity(self.instrs.len());
        let ids: Vec<_> = self
            .instrs
            .iter()
            .map(|&(op, home)| match home {
                Some(h) => b.push(Instruction::preplaced(op, h)),
                None => b.push(Instruction::new(op)),
            })
            .collect();
        for &(s, d) in &self.edges {
            b.edge(ids[s], ids[d]).ok()?;
        }
        b.build().ok()
    }

    /// The spec with instruction `k` (and its incident edges) removed,
    /// remaining instructions renumbered.
    fn without_instr(&self, k: usize) -> DagSpec {
        let mut instrs = self.instrs.clone();
        instrs.remove(k);
        let shift = |x: usize| if x > k { x - 1 } else { x };
        let edges = self
            .edges
            .iter()
            .filter(|&&(s, d)| s != k && d != k)
            .map(|&(s, d)| (shift(s), shift(d)))
            .collect();
        DagSpec { instrs, edges }
    }

    fn without_edge(&self, k: usize) -> DagSpec {
        let mut edges = self.edges.clone();
        edges.remove(k);
        DagSpec {
            instrs: self.instrs.clone(),
            edges,
        }
    }
}

/// Does this graph still make `scheduler` fail the referee pair?
fn still_fails(spec: &DagSpec, machine: &Machine, scheduler: &str) -> Option<String> {
    let dag = spec.build()?;
    let unit = SchedulingUnit::new("shrink", dag);
    check_one(&unit, machine, scheduler).err()
}

/// Greedy minimization: repeatedly drop any single instruction or
/// edge whose removal preserves the failure, until nothing can go.
fn shrink(unit: &SchedulingUnit, machine: &Machine, scheduler: &str) -> (DagSpec, String) {
    let mut spec = DagSpec::of(unit.dag());
    let mut message =
        still_fails(&spec, machine, scheduler).expect("shrink starts from a reproduced failure");
    loop {
        let mut progressed = false;
        let mut k = 0;
        while k < spec.instrs.len() {
            let candidate = spec.without_instr(k);
            if let Some(m) = still_fails(&candidate, machine, scheduler) {
                spec = candidate;
                message = m;
                progressed = true;
            } else {
                k += 1;
            }
        }
        let mut k = 0;
        while k < spec.edges.len() {
            let candidate = spec.without_edge(k);
            if let Some(m) = still_fails(&candidate, machine, scheduler) {
                spec = candidate;
                message = m;
                progressed = true;
            } else {
                k += 1;
            }
        }
        if !progressed {
            return (spec, message);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args, default_jobs());
    let mut seed = 0u64;
    let mut budget = 500usize;
    let mut dump_dir = "target/fuzz-repros".to_string();
    let mut family: Option<&'static str> = None;
    let mut size: Option<usize> = None;
    let mut machines: Vec<&'static str> = MACHINES.to_vec();
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--seed" => {
                k += 1;
                seed = args[k].parse().expect("--seed takes an integer");
            }
            "--budget" => {
                k += 1;
                budget = args[k].parse().expect("--budget takes an integer");
            }
            "--dump-dir" => {
                k += 1;
                dump_dir = args[k].clone();
            }
            "--family" => {
                k += 1;
                let want = args[k].clone();
                family = Some(
                    FAMILIES
                        .iter()
                        .copied()
                        .find(|f| *f == want)
                        .unwrap_or_else(|| {
                            eprintln!("fuzz: unknown family '{want}' (families: {FAMILIES:?})");
                            std::process::exit(2);
                        }),
                );
            }
            "--size" => {
                k += 1;
                size = Some(args[k].parse().expect("--size takes an integer"));
            }
            "--machines" => {
                k += 1;
                machines = args[k]
                    .split(',')
                    .map(|want| {
                        MACHINES
                            .iter()
                            .copied()
                            .find(|m| *m == want.trim())
                            .unwrap_or_else(|| {
                                eprintln!(
                                    "fuzz: unknown machine '{want}' (use rawN/vliwN presets)"
                                );
                                std::process::exit(2);
                            })
                    })
                    .collect();
            }
            other => {
                eprintln!("fuzz: unknown option '{other}'");
                eprintln!(
                    "usage: fuzz [--seed N] [--budget N] [--jobs N] [--dump-dir PATH] \
                     [--family NAME] [--size N] [--machines a,b,c]"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }

    // Deterministic case list: every draw comes from one SplitMix64
    // stream, so (seed, budget) fixes the entire sweep. Pinned
    // dimensions still consume their draws, keeping the unpinned
    // dimensions' sequence identical to the full sweep's.
    let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
    let cases: Vec<Case> = (0..budget)
        .map(|id| {
            let r0 = splitmix64(&mut state);
            let r1 = splitmix64(&mut state);
            let r2 = splitmix64(&mut state);
            Case {
                id,
                family: family.unwrap_or(FAMILIES[(r0 % FAMILIES.len() as u64) as usize]),
                machine_spec: machines[(r1 % machines.len() as u64) as usize],
                size: size.unwrap_or(3 + (r2 % 90) as usize),
                unit_seed: splitmix64(&mut state),
            }
        })
        .collect();

    // Panics are caught and reported as failures; silence the default
    // hook's backtrace spew so the summary stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = run_cells(&cases, jobs, run_case);
    let _ = std::panic::take_hook();

    let schedules: usize = outcomes.iter().map(|o| o.schedules).sum();
    let rejects: usize = outcomes.iter().map(|o| o.rejects).sum();
    let failures: Vec<&Failure> = outcomes.iter().flat_map(|o| &o.failures).collect();
    println!(
        "fuzz: {budget} cases (seed {seed}), {schedules} schedules cross-checked, \
         {rejects} legitimate rejects, {} failures",
        failures.len()
    );

    if failures.is_empty() {
        return;
    }
    for f in &failures {
        println!(
            "  case {:>4} {:<18} {:<7} {:<11} {}",
            f.case_id, f.family, f.machine_spec, f.scheduler, f.message
        );
    }

    // Shrink and dump the first failure per scheduler.
    std::fs::create_dir_all(&dump_dir).expect("create dump dir");
    let mut dumped: Vec<&str> = Vec::new();
    for f in &failures {
        if dumped.contains(&f.scheduler) {
            continue;
        }
        dumped.push(f.scheduler);
        let case = &cases[f.case_id];
        let machine = machine_from_spec(case.machine_spec);
        let unit = build_unit(
            case.family,
            case.size,
            machine.n_clusters() as u16,
            case.unit_seed,
        );
        let (spec, message) = shrink(&unit, &machine, f.scheduler);
        let dag = spec.build().expect("shrunk spec still builds");
        let name = format!("repro-{}-{}-case{}", f.scheduler, f.machine_spec, f.case_id);
        let shrunk = SchedulingUnit::new(name.clone(), dag);
        let path = format!("{dump_dir}/{name}.cdag");
        std::fs::write(&path, to_text(&shrunk)).expect("write repro");
        println!(
            "  shrunk case {} to {} instrs / {} edges ({message})",
            f.case_id,
            spec.instrs.len(),
            spec.edges.len()
        );
        println!(
            "  repro: csched verify {path} --machine {} --scheduler {}",
            f.machine_spec, f.scheduler
        );
    }
    std::process::exit(1);
}
