//! Criterion microbenchmarks of the banded preference-map layout
//! against the dense reference, on the two band regimes that matter:
//!
//! * **narrow** — every instruction windowed to an 8-slot slack band,
//!   the common post-INITTIME shape the banded layout exists for;
//! * **full** — no windowing, every band spanning all `n_slots`, the
//!   worst case where banded must not lose to dense.
//!
//! Covered ops: `normalize_all`, `scale_cluster`, `preferred_cluster`
//! after invalidation, and `set_window` (narrow only — shrinking is a
//! no-op without slack to cut).

use convergent_core::PreferenceMap;
use convergent_ir::{ClusterId, InstrId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: usize = 500;
const CLUSTERS: usize = 4;
const SLOTS: usize = 512;
const BAND: u32 = 8;

/// A map in the requested layout, optionally windowed to narrow bands,
/// with every row densified (so banded rows actually carry band
/// storage, not the uniform closed form).
fn prepared(dense: bool, narrow: bool) -> PreferenceMap {
    let mut w = if dense {
        PreferenceMap::new_dense(N, CLUSTERS, SLOTS)
    } else {
        PreferenceMap::new(N, CLUSTERS, SLOTS)
    };
    for i in 0..N {
        let id = InstrId::new(i as u32);
        if narrow {
            let lo = (i as u32 * 7) % (SLOTS as u32 - BAND);
            w.set_window(id, lo, lo + BAND - 1);
        }
        w.scale_cluster(id, ClusterId::new((i % CLUSTERS) as u16), 2.0);
    }
    w.normalize_all();
    w
}

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("banded_map");
    for (layout, dense) in [("banded", false), ("dense", true)] {
        for (regime, narrow) in [("narrow", true), ("full", false)] {
            let label = format!("{layout}/{regime}");
            group.bench_function(BenchmarkId::new("normalize_all", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    // Perturb one row so normalize has real work, then
                    // the O(N) lazy renormalization.
                    w.scale_cluster(InstrId::new(0), ClusterId::new(1), black_box(1.5));
                    w.normalize_all();
                    black_box(&w);
                });
            });
            group.bench_function(BenchmarkId::new("scale_cluster", &label), |b| {
                let mut w = prepared(dense, narrow);
                b.iter(|| {
                    for i in 0..N {
                        w.scale_cluster(
                            InstrId::new(i as u32),
                            ClusterId::new((i % CLUSTERS) as u16),
                            black_box(1.01),
                        );
                    }
                    black_box(&w);
                });
            });
            group.bench_function(
                BenchmarkId::new("preferred_cluster_invalidated", &label),
                |b| {
                    let mut w = prepared(dense, narrow);
                    b.iter(|| {
                        let mut acc = 0u64;
                        for i in 0..N {
                            let id = InstrId::new(i as u32);
                            // The write invalidates the argmax cache, so
                            // every read pays the rescan.
                            w.scale_cluster(id, ClusterId::new(1), black_box(1.001));
                            acc += u64::from(w.preferred_cluster(id).raw());
                        }
                        black_box(acc)
                    });
                },
            );
            if narrow {
                group.bench_function(BenchmarkId::new("set_window", &label), |b| {
                    // Shrink one slot off alternating ends; rebuilt maps
                    // each iteration batch would need iter_batched, so
                    // shrink a fresh clone of the prepared map instead.
                    let base = prepared(dense, true);
                    b.iter(|| {
                        let mut w = base.clone();
                        for i in 0..N {
                            let id = InstrId::new(i as u32);
                            let (lo, hi) = w.window(id);
                            w.set_window(id, lo + 1, hi);
                        }
                        black_box(&w);
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
