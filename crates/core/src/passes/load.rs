//! LOAD — load balance.
//!
//! "This pass performs load balancing across clusters. Each weight on
//! a cluster is divided by the total load on that cluster":
//!
//! ```text
//! ∀ (i, t, c):  W[i, t, c] ← W[i, t, c] / load(c)
//! ```
//!
//! The load of a cluster is the total expected weight currently
//! leaning on it: `Σ_i W[i]`'s normalized cluster marginal. Loads are
//! snapshotted before scaling so the pass is order-independent.

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::ClusterId;

use crate::{Pass, PassContext};

/// The LOAD pass. See the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadBalance;

impl LoadBalance {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        LoadBalance
    }
}

impl Pass for LoadBalance {
    fn name(&self) -> &'static str {
        "LOAD"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let n_clusters = ctx.weights.n_clusters();
        let mut load = vec![f64::MIN_POSITIVE; n_clusters];
        for i in ctx.dag.ids() {
            let tot = ctx.weights.total(i).max(f64::MIN_POSITIVE);
            for c in 0..n_clusters {
                load[c] += ctx.weights.cluster_weight(i, ClusterId::new(c as u16)) / tot;
            }
        }
        for i in ctx.dag.ids() {
            for c in 0..n_clusters {
                ctx.weights
                    .scale_cluster(i, ClusterId::new(c as u16), 1.0 / load[c]);
            }
        }
    }

    fn effect(&self) -> PassEffect {
        // `1 / load(c)` with loads floored at `f64::MIN_POSITIVE`:
        // data-dependent but always strictly positive and finite. The
        // same factor applies to every instruction's column `c`, so
        // the pass cannot break cluster-marginal ties by itself.
        PassEffect::new(vec![EffectOp::ScaleClusters {
            factor: Interval::positive_finite(),
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_machine::Machine;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn overloaded_cluster_is_discounted() {
        // Three instructions lean hard on cluster 0; a fourth,
        // undecided one should tip away from it after LOAD.
        let mut b = DagBuilder::new();
        let pinned: Vec<_> = (0..3).map(|_| b.instr(Opcode::IntAlu)).collect();
        let free = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        for &p in &pinned {
            rig.weights.scale_cluster(p, c(0), 50.0);
        }
        rig.weights.normalize_all();
        rig.run(&LoadBalance::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_cluster(free), c(1));
    }

    #[test]
    fn balanced_load_is_near_identity() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(x, c(0), 5.0);
        rig.weights.scale_cluster(y, c(1), 5.0);
        rig.weights.normalize_all();
        rig.run(&LoadBalance::new());
        // Symmetric loads: preferences survive.
        assert_eq!(rig.weights.preferred_cluster(x), c(0));
        assert_eq!(rig.weights.preferred_cluster(y), c(1));
    }

    #[test]
    fn strong_preference_survives_mild_imbalance() {
        // One instruction pinned ×100 on cluster 0, one mildly on 0.
        let mut b = DagBuilder::new();
        let pinned = b.instr(Opcode::IntAlu);
        let mild = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(pinned, c(0), 100.0);
        rig.weights.scale_cluster(mild, c(0), 1.2);
        rig.weights.normalize_all();
        rig.run(&LoadBalance::new());
        // The pinned one stays; the mild one flips to balance load.
        assert_eq!(rig.weights.preferred_cluster(pinned), c(0));
        assert_eq!(rig.weights.preferred_cluster(mild), c(1));
    }
}
