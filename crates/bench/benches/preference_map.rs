//! Criterion microbenchmarks of the preference map's basic
//! operations — the inner loop of every pass, which the paper requires
//! to be cheap ("the system incrementally keeps track of the sums of
//! the weights over both space and time").

use convergent_core::PreferenceMap;
use convergent_ir::{ClusterId, InstrId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("preference_map");
    for &(n, clusters, slots) in &[(100usize, 4usize, 32usize), (500, 16, 64)] {
        let label = format!("{n}x{clusters}x{slots}");
        group.bench_function(BenchmarkId::new("scale_cluster_all", &label), |b| {
            let mut w = PreferenceMap::new(n, clusters, slots);
            b.iter(|| {
                for i in 0..n {
                    w.scale_cluster(
                        InstrId::new(i as u32),
                        ClusterId::new((i % clusters) as u16),
                        black_box(1.01),
                    );
                }
            });
        });
        group.bench_function(BenchmarkId::new("normalize_all", &label), |b| {
            let mut w = PreferenceMap::new(n, clusters, slots);
            for i in 0..n {
                w.scale_cluster(InstrId::new(i as u32), ClusterId::new(0), 3.0);
            }
            b.iter(|| {
                w.normalize_all();
                black_box(&w);
            });
        });
        group.bench_function(BenchmarkId::new("preferred_and_confidence", &label), |b| {
            let w = PreferenceMap::new(n, clusters, slots);
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..n {
                    let id = InstrId::new(i as u32);
                    acc += w.confidence(id) + f64::from(w.preferred_cluster(id).raw());
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
