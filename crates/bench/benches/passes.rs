//! Criterion microbenchmarks: cost of each convergent-scheduling pass
//! on a representative workload (mxm on 16-tile Raw), plus the full
//! driver pipeline end to end.

use convergent_core::passes::{
    Comm, EmphCp, InitTime, LevelDistribute, LoadBalance, Noise, Path, PathProp, Place, PlaceProp,
};
use convergent_core::{ConvergentScheduler, Pass, PassContext, PassScratch, PreferenceMap};
use convergent_ir::{DistanceOracle, TimeAnalysis};
use convergent_machine::Machine;
use convergent_workloads::{mxm, MxmParams};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_passes(c: &mut Criterion) {
    let machine = Machine::raw(16);
    let unit = mxm(MxmParams::for_banks(16));
    let dag = unit.dag();
    let time = TimeAnalysis::compute(dag, |i| machine.latency_of(i));
    let slots = time.critical_path_length().max(1) as usize;

    let passes: Vec<Box<dyn Pass>> = vec![
        Box::new(InitTime::new()),
        Box::new(Noise::new()),
        Box::new(Place::new()),
        Box::new(PlaceProp::new()),
        Box::new(LoadBalance::new()),
        Box::new(Path::new()),
        Box::new(Comm::new()),
        Box::new(LevelDistribute::new()),
        Box::new(PathProp::new()),
        Box::new(EmphCp::new()),
    ];

    let mut group = c.benchmark_group("passes_mxm16");
    for pass in passes {
        group.bench_function(pass.name(), |b| {
            b.iter(|| {
                let mut weights = PreferenceMap::new(dag.len(), machine.n_clusters(), slots);
                let mut dist = DistanceOracle::new();
                let mut rng = StdRng::seed_from_u64(1);
                let mut scratch = PassScratch::default();
                let mut ctx = PassContext {
                    dag,
                    machine: &machine,
                    time: &time,
                    dist: &mut dist,
                    rng: &mut rng,
                    weights: &mut weights,
                    scratch: &mut scratch,
                };
                pass.run(&mut ctx);
                weights.normalize_all();
                black_box(&weights);
            });
        });
    }
    group.finish();

    // The whole driver (every pass + per-pass normalize_all + the
    // convergence trace + final assignment): the number the lazy
    // normalization and argmax caches exist to improve.
    let mut group = c.benchmark_group("driver_mxm16");
    group.sample_size(10);
    group.bench_function("raw_default_full", |b| {
        b.iter(|| {
            let sched = ConvergentScheduler::raw_default();
            black_box(sched.assign(dag, &machine).expect("assigns"))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
