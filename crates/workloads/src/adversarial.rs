//! Adversarial DAG families for the differential fuzz harness.
//!
//! Each generator here is a deliberately degenerate graph shape that
//! stresses one corner of the scheduler/referee contract:
//!
//! * [`deep_chain`] — a single serial chain of 1-cycle ops: zero
//!   slack, zero parallelism. Any off-by-one in issue-order or
//!   dependence timing shifts the makespan and is caught immediately.
//! * [`wide_fanin`] — many producers feeding one consumer: the
//!   worst case for transfer clustering, arrival min-merging, and
//!   network contention at the consumer's cluster.
//! * [`fully_preplaced`] — every operation pinned to a bank: the
//!   placement phases have no freedom at all, so every scheduler must
//!   cope with a placement it did not choose.
//! * [`op_class_desert`] — the whole graph is one op class: on
//!   machines where few functional units can execute that class,
//!   capable slots become the scarce resource.
//! * [`disconnected`] — several weakly-connected components of
//!   uneven sizes in one unit: distance fields and critical-path
//!   analyses see `UNREACHABLE` pairs, and the region decomposer
//!   (`--shards`) gets real pieces to pack.
//!
//! All generators are deterministic given their parameters.

use convergent_ir::{ClusterId, DagBuilder, Instruction, Opcode, SchedulingUnit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single chain of `len` one-cycle integer ops — the zero-slack
/// serial worst case.
#[must_use]
pub fn deep_chain(len: usize) -> SchedulingUnit {
    assert!(len > 0, "need at least one instruction");
    let mut b = DagBuilder::with_capacity(len);
    let mut prev = b.instr(Opcode::IntAlu);
    for _ in 1..len {
        let next = b.instr(Opcode::IntAlu);
        b.edge(prev, next).expect("fresh ids");
        prev = next;
    }
    SchedulingUnit::new(format!("deep-chain-{len}"), b.build().expect("a chain"))
}

/// `n_producers` independent ops all feeding a single consumer — a
/// maximal fan-in join. A random subset of the producers are loads
/// preplaced across `n_banks` so the join also crosses banks.
#[must_use]
pub fn wide_fanin(n_producers: usize, n_banks: u16, seed: u64) -> SchedulingUnit {
    assert!(n_producers > 0, "need at least one producer");
    let n_banks = n_banks.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::with_capacity(n_producers + 1);
    let mut producers = Vec::with_capacity(n_producers);
    for k in 0..n_producers {
        let id = if rng.gen_bool(0.3) {
            let bank = ClusterId::new((k as u16) % n_banks);
            b.push(Instruction::preplaced(Opcode::Load, bank))
        } else {
            b.instr(Opcode::IntAlu)
        };
        producers.push(id);
    }
    let join = b.instr(Opcode::IntAlu);
    for p in producers {
        b.edge(p, join).expect("fresh ids");
    }
    SchedulingUnit::new(
        format!("wide-fanin-{n_producers}"),
        b.build().expect("a join is a DAG"),
    )
}

/// A layered graph in which *every* instruction is a memory op
/// preplaced on one of `n_banks` banks: the schedulers' placement
/// phases have zero freedom (on hard-preplacement machines the whole
/// assignment is forced).
#[must_use]
pub fn fully_preplaced(n_instrs: usize, n_banks: u16, seed: u64) -> SchedulingUnit {
    assert!(n_instrs > 0, "need at least one instruction");
    let n_banks = n_banks.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::with_capacity(n_instrs);
    let mut ids = Vec::with_capacity(n_instrs);
    for _ in 0..n_instrs {
        let opcode = if rng.gen_bool(0.5) {
            Opcode::Load
        } else {
            Opcode::Store
        };
        let bank = ClusterId::new(rng.gen_range(0..n_banks));
        let id = b.push(Instruction::preplaced(opcode, bank));
        // Wire to up to two earlier ops so chains cross banks.
        for _ in 0..2 {
            if !ids.is_empty() && rng.gen_bool(0.6) {
                let src = ids[rng.gen_range(0..ids.len())];
                let _ = b.edge_dedup(src, id);
            }
        }
        ids.push(id);
    }
    SchedulingUnit::new(
        format!("preplaced-{n_instrs}"),
        b.build().expect("edges only point backward"),
    )
}

/// A layered graph built from a single op class (floating-point
/// multiplies), so only the few FPU-capable issue slots matter — an
/// "op-class desert" for every other functional unit.
#[must_use]
pub fn op_class_desert(n_instrs: usize, seed: u64) -> SchedulingUnit {
    assert!(n_instrs > 0, "need at least one instruction");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::with_capacity(n_instrs);
    let mut ids = Vec::with_capacity(n_instrs);
    for _ in 0..n_instrs {
        let id = b.instr(Opcode::FMul);
        if !ids.is_empty() && rng.gen_bool(0.7) {
            let src = ids[rng.gen_range(0..ids.len())];
            let _ = b.edge_dedup(src, id);
        }
        ids.push(id);
    }
    SchedulingUnit::new(
        format!("fmul-desert-{n_instrs}"),
        b.build().expect("edges only point backward"),
    )
}

/// `n_components` weakly-connected components totalling `n_instrs`
/// instructions. Component sizes are drawn unevenly (each at least
/// one instruction); inside a component, instructions chain to their
/// predecessor and pick up a random extra back-edge, so every
/// component has its own nontrivial critical path while cross-component
/// distances are all `UNREACHABLE`.
#[must_use]
pub fn disconnected(n_components: usize, n_instrs: usize, seed: u64) -> SchedulingUnit {
    assert!(n_instrs > 0, "need at least one instruction");
    let n_components = n_components.clamp(1, n_instrs);
    let mut rng = StdRng::seed_from_u64(seed);
    // Uneven split: every component gets one instruction, the rest are
    // scattered at random.
    let mut sizes = vec![1usize; n_components];
    for _ in n_components..n_instrs {
        sizes[rng.gen_range(0..n_components)] += 1;
    }
    let mut b = DagBuilder::with_capacity(n_instrs);
    for &size in &sizes {
        let mut ids = Vec::with_capacity(size);
        for k in 0..size {
            let opcode = match rng.gen_range(0..4u8) {
                0 => Opcode::Load,
                1 => Opcode::FMul,
                _ => Opcode::IntAlu,
            };
            let id = b.push(Instruction::new(opcode));
            if k > 0 {
                b.edge(ids[k - 1], id).expect("fresh ids");
                if k > 1 && rng.gen_bool(0.3) {
                    let src = ids[rng.gen_range(0..k - 1)];
                    let _ = b.edge_dedup(src, id);
                }
            }
            ids.push(id);
        }
    }
    SchedulingUnit::new(
        format!("disconnected-{n_components}x{n_instrs}"),
        b.build().expect("edges only point backward"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::ShapeStats;

    #[test]
    fn deep_chain_is_fully_serial() {
        let unit = deep_chain(20);
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        assert_eq!(s.height(), 20);
        assert_eq!(s.max_width(), 1);
    }

    #[test]
    fn wide_fanin_has_one_join() {
        let unit = wide_fanin(30, 4, 7);
        assert_eq!(unit.dag().len(), 31);
        assert_eq!(unit.dag().edge_count(), 30);
        let join = convergent_ir::InstrId::new(30);
        assert_eq!(unit.dag().preds(join).len(), 30);
    }

    #[test]
    fn fully_preplaced_pins_everything() {
        let unit = fully_preplaced(50, 4, 3);
        assert_eq!(unit.dag().preplaced_count(), 50);
    }

    #[test]
    fn desert_is_single_class() {
        let unit = op_class_desert(40, 11);
        assert!(unit
            .dag()
            .instrs()
            .iter()
            .all(|i| i.opcode() == Opcode::FMul));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = fully_preplaced(60, 4, 9);
        let b = fully_preplaced(60, 4, 9);
        assert_eq!(a.dag().edge_count(), b.dag().edge_count());
        let c = wide_fanin(25, 2, 1);
        let d = wide_fanin(25, 2, 1);
        assert_eq!(c.dag().preplaced_count(), d.dag().preplaced_count());
        let e = disconnected(5, 40, 13);
        let f = disconnected(5, 40, 13);
        assert_eq!(e.dag().edge_count(), f.dag().edge_count());
    }

    #[test]
    fn disconnected_has_the_requested_component_count() {
        for (k, n, seed) in [(1, 10, 0), (4, 37, 3), (8, 8, 9), (6, 200, 42)] {
            let unit = disconnected(k, n, seed);
            assert_eq!(unit.dag().len(), n);
            let components = convergent_ir::weakly_connected_components(unit.dag());
            assert_eq!(components.len(), k, "k={k} n={n} seed={seed}");
        }
        // More components than instructions degrades to singletons.
        let unit = disconnected(10, 3, 1);
        assert_eq!(
            convergent_ir::weakly_connected_components(unit.dag()).len(),
            3
        );
    }
}
