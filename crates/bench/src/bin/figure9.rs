//! Figure 9: convergence of spatial assignments on Chorus — the
//! fraction of instructions whose preferred clusters change per pass
//! on the four-cluster VLIW (time-only passes excluded).
//!
//! ```text
//! cargo run --release -p convergent-bench --bin figure9
//! ```

use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_workloads::vliw_suite;

fn main() {
    let machine = Machine::chorus_vliw(4);
    let scheduler = ConvergentScheduler::vliw_default();
    let suite = vliw_suite(4);

    let first = scheduler
        .assign(suite[0].dag(), &machine)
        .expect("suite schedules");
    let pass_names: Vec<&str> = first.trace().spatial().map(|r| r.name).collect();
    print!("{:<14}", "benchmark");
    for n in &pass_names {
        print!("{n:>11}");
    }
    println!();

    for unit in &suite {
        let outcome = scheduler
            .assign(unit.dag(), &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", unit.name()));
        print!("{:<14}", unit.name());
        for r in outcome.trace().spatial() {
            print!("{:>10.0}%", r.changed_fraction * 100.0);
        }
        println!();
    }
}
