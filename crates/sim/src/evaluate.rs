//! Cycle-level execution of a schedule.
//!
//! [`evaluate`] re-executes a (validated) schedule with true machine
//! semantics: per-functional-unit in-order issue, data arrival through
//! explicit transfers, and — on mesh machines — dimension-ordered
//! routing with per-link contention. The scheduler's nominal cycle
//! numbers act as the *issue order*; the evaluator derives the real
//! timing, charging stalls wherever two routes fight over a wire.
//!
//! This mirrors how Raw executes compiler-generated code: the static
//! network follows the compiler's routes, and any optimism in the
//! schedule surfaces as extra cycles at run time rather than as
//! incorrect execution.
//!
//! Transfers form *chains*: a relayed value (A→B then B→C) departs
//! each hop only once it has actually arrived at that hop's source
//! cluster, matching what [`crate::validate`] accepts. A schedule
//! whose operations can never all issue (e.g. an unvalidated one with
//! a cross-cluster dependence and no transfer) is reported as
//! [`SimError::NoProgress`], not a panic.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use convergent_ir::{ClusterId, Cycle, Dag, InstrId};
use convergent_machine::Machine;

use crate::route::{route_hops, Router, RouterReport};
use crate::{SimError, SpaceTimeSchedule};

/// What a schedule actually costs when executed.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalReport {
    /// The scheduler's claimed makespan.
    pub nominal_makespan: Cycle,
    /// Execution time including network contention stalls.
    pub makespan: Cycle,
    /// Network behaviour (stalls, route count, link-cycles).
    pub network: RouterReport,
    /// Fraction of issue slots used over the execution
    /// (`issued ops / (total FUs × makespan)`).
    pub fu_utilization: f64,
    /// Number of cross-cluster transfers executed.
    pub comm_ops: usize,
}

/// Item kinds competing for an issue slot.
#[derive(Clone, Copy, Debug)]
enum Item {
    Instr(InstrId),
    Comm(usize),
}

/// Value movement through the network: per-cluster arrivals, wire
/// routes (injected exactly once, when their source cluster first
/// holds the value), and the contention ledger.
struct Net {
    router: Router,
    report: RouterReport,
    /// (producer, destination cluster) → first usable cycle there.
    arrival: HashMap<(InstrId, usize), u32>,
    /// Per-producer indices into `comms` of routes with no issue slot.
    wire_of: Vec<Vec<usize>>,
    injected: Vec<bool>,
    max_time: u32,
}

impl Net {
    fn new(dag: &Dag, schedule: &SpaceTimeSchedule) -> Self {
        let mut wire_of: Vec<Vec<usize>> = vec![Vec::new(); dag.len()];
        for (k, comm) in schedule.comms().iter().enumerate() {
            if comm.fu.is_none() {
                wire_of[comm.producer.index()].push(k);
            }
        }
        Net {
            router: Router::new(),
            report: RouterReport::default(),
            arrival: HashMap::new(),
            injected: vec![false; schedule.comms().len()],
            wire_of,
            max_time: 0,
        }
    }

    /// Injects every not-yet-injected wire route of `p` departing
    /// `cluster`, where the value becomes available at `avail`, and
    /// queues the resulting deliveries.
    fn inject_wires(
        &mut self,
        machine: &Machine,
        schedule: &SpaceTimeSchedule,
        p: InstrId,
        cluster: ClusterId,
        avail: u32,
        work: &mut Vec<(ClusterId, u32)>,
    ) {
        let ks: Vec<usize> = self.wire_of[p.index()]
            .iter()
            .copied()
            .filter(|&k| !self.injected[k] && schedule.comms()[k].from == cluster)
            .collect();
        for k in ks {
            self.injected[k] = true;
            let comm = &schedule.comms()[k];
            let path = route_hops(machine, comm.from, comm.to);
            let inj = self.router.inject(&path, avail);
            self.report.stall_cycles += inj - avail;
            self.report.routes += 1;
            self.report.link_cycles += path.len().saturating_sub(1);
            work.push((comm.to, inj + comm.latency));
        }
    }

    /// Records deliveries of `p`'s value and chases any relay chains
    /// they unlock.
    fn drain(
        &mut self,
        machine: &Machine,
        schedule: &SpaceTimeSchedule,
        p: InstrId,
        mut work: Vec<(ClusterId, u32)>,
    ) {
        while let Some((cluster, arr)) = work.pop() {
            self.max_time = self.max_time.max(arr);
            let improved = match self.arrival.entry((p, cluster.index())) {
                Entry::Occupied(mut e) => {
                    if arr < *e.get() {
                        e.insert(arr);
                        true
                    } else {
                        false
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(arr);
                    true
                }
            };
            if improved {
                self.inject_wires(machine, schedule, p, cluster, arr, &mut work);
            }
        }
    }

    /// Producer `p` finished at `fin` on `cluster`: launch its wire
    /// routes (and their relays).
    fn on_instr_finish(
        &mut self,
        machine: &Machine,
        schedule: &SpaceTimeSchedule,
        p: InstrId,
        cluster: ClusterId,
        fin: u32,
    ) {
        let mut work = Vec::new();
        self.inject_wires(machine, schedule, p, cluster, fin, &mut work);
        self.drain(machine, schedule, p, work);
    }

    /// An issue-slot transfer of `p`'s value lands on `to` at `arr`.
    fn on_comm_arrival(
        &mut self,
        machine: &Machine,
        schedule: &SpaceTimeSchedule,
        p: InstrId,
        to: ClusterId,
        arr: u32,
    ) {
        self.report.routes += 1;
        self.report.link_cycles += 1;
        self.drain(machine, schedule, p, vec![(to, arr)]);
    }
}

/// Executes `schedule` on `machine` and reports true cost.
///
/// # Errors
///
/// Returns [`SimError::NoProgress`] if the simulation stops making
/// progress, which only happens for schedules that do not pass
/// [`crate::validate`] (e.g. a cross-cluster dependence with no
/// transfer, or a transfer departing a cluster the value never
/// reaches). Validate first.
pub fn evaluate(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
) -> Result<EvalReport, SimError> {
    let n_clusters = machine.n_clusters();
    // Build per-(cluster, fu) issue queues ordered by nominal start.
    let mut queues: Vec<Vec<Vec<Item>>> = (0..n_clusters)
        .map(|c| {
            let width = machine
                .cluster(convergent_ir::ClusterId::new(c as u16))
                .issue_width();
            vec![Vec::new(); width]
        })
        .collect();
    let mut keyed: Vec<Vec<Vec<(u32, u8, u32)>>> = queues
        .iter()
        .map(|fus| fus.iter().map(|_| Vec::new()).collect())
        .collect();
    for op in schedule.ops() {
        queues[op.cluster.index()][op.fu].push(Item::Instr(op.instr));
        keyed[op.cluster.index()][op.fu].push((op.start.get(), 0, op.instr.raw()));
    }
    for (k, comm) in schedule.comms().iter().enumerate() {
        if let Some(fu) = comm.fu {
            queues[comm.from.index()][fu].push(Item::Comm(k));
            keyed[comm.from.index()][fu].push((comm.start.get(), 1, comm.producer.raw()));
        }
    }
    for c in 0..n_clusters {
        for f in 0..queues[c].len() {
            let mut order: Vec<usize> = (0..queues[c][f].len()).collect();
            order.sort_by_key(|&k| keyed[c][f][k]);
            queues[c][f] = order.iter().map(|&k| queues[c][f][k]).collect();
        }
    }

    let mut finish: Vec<Option<u32>> = vec![None; dag.len()];
    let mut net = Net::new(dag, schedule);
    let mut heads: Vec<Vec<usize>> = queues
        .iter()
        .map(|fus| fus.iter().map(|_| 0usize).collect())
        .collect();
    let mut remaining: usize =
        dag.len() + schedule.comms().iter().filter(|c| c.fu.is_some()).count();
    let total_issue_slots: usize = remaining;
    let limit = schedule.makespan().get().saturating_mul(8) + 1024;

    let ready_instr = |i: InstrId,
                       cluster: usize,
                       t: u32,
                       finish: &[Option<u32>],
                       arrival: &HashMap<(InstrId, usize), u32>|
     -> bool {
        dag.preds(i).iter().all(|&p| {
            let p_op = schedule.op(p);
            if p_op.cluster.index() == cluster {
                finish[p.index()].is_some_and(|f| f <= t)
            } else {
                arrival.get(&(p, cluster)).is_some_and(|&a| a <= t)
            }
        })
    };

    let mut t: u32 = 0;
    while remaining > 0 {
        if t > limit {
            return Err(SimError::NoProgress {
                cycle: t,
                remaining,
            });
        }
        for c in 0..n_clusters {
            for f in 0..queues[c].len() {
                let h = heads[c][f];
                if h >= queues[c][f].len() {
                    continue;
                }
                match queues[c][f][h] {
                    Item::Instr(i) => {
                        if ready_instr(i, c, t, &finish, &net.arrival) {
                            let lat = schedule.op(i).latency;
                            let fin = t + lat;
                            finish[i.index()] = Some(fin);
                            net.max_time = net.max_time.max(fin);
                            heads[c][f] += 1;
                            remaining -= 1;
                            net.on_instr_finish(machine, schedule, i, schedule.op(i).cluster, fin);
                        }
                    }
                    Item::Comm(k) => {
                        let comm = &schedule.comms()[k];
                        let p = comm.producer;
                        // The transfer departs once the value is at its
                        // source cluster — the producer's own cluster,
                        // or (for a relay) wherever an earlier hop
                        // dropped it.
                        let src_ready = if comm.from == schedule.op(p).cluster {
                            finish[p.index()].is_some_and(|fp| fp <= t)
                        } else {
                            net.arrival
                                .get(&(p, comm.from.index()))
                                .is_some_and(|&a| a <= t)
                        };
                        if src_ready {
                            heads[c][f] += 1;
                            remaining -= 1;
                            net.on_comm_arrival(machine, schedule, p, comm.to, t + comm.latency);
                        }
                    }
                }
            }
        }
        t += 1;
    }

    let makespan = net.max_time.max(1);
    let total_fus: usize = (0..n_clusters)
        .map(|c| {
            machine
                .cluster(convergent_ir::ClusterId::new(c as u16))
                .issue_width()
        })
        .sum();
    Ok(EvalReport {
        nominal_makespan: schedule.makespan(),
        makespan: Cycle::new(makespan),
        network: net.report,
        fu_utilization: total_issue_slots as f64 / (total_fus as f64 * f64::from(makespan)),
        comm_ops: schedule.comm_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, ScheduleBuilder};
    use convergent_ir::{ClusterId, DagBuilder, Opcode};

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    fn i(k: u32) -> InstrId {
        InstrId::new(k)
    }

    #[test]
    fn simple_chain_matches_nominal() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        sb.place(d, c(0), 0, Cycle::new(1));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = evaluate(&dag, &m, &s).unwrap();
        assert_eq!(r.makespan, Cycle::new(2));
        assert_eq!(r.nominal_makespan, Cycle::new(2));
        assert_eq!(r.network.stall_cycles, 0);
        assert_eq!(r.comm_ops, 0);
    }

    #[test]
    fn vliw_transfer_executes() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        sb.comm(a, c(0), c(1), Cycle::new(1), Some(3));
        sb.place(d, c(1), 0, Cycle::new(2));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = evaluate(&dag, &m, &s).unwrap();
        assert_eq!(r.makespan, Cycle::new(3));
        assert_eq!(r.comm_ops, 1);
        assert_eq!(r.network.routes, 1);
    }

    #[test]
    fn raw_route_without_contention() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        sb.comm(a, c(0), c(1), Cycle::new(1), None);
        sb.place(d, c(1), 0, Cycle::new(4));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = evaluate(&dag, &m, &s).unwrap();
        assert_eq!(r.makespan, Cycle::new(5)); // consumer 4..5
        assert_eq!(r.network.stall_cycles, 0);
    }

    #[test]
    fn contention_stalls_surface_in_makespan() {
        // Routes A: tile0 -> tile2 and B: tile1 -> tile2 share the mesh
        // link (1,0)->(2,0). A's producer (IntAlu, finish 1) injects at
        // cycle 1 and uses the shared link at cycle 3; B's producer
        // (IntMul, finish 2) injects at cycle 2 and wants the same link
        // at cycle 3 -> one stall.
        let mut b = DagBuilder::new();
        let p0 = b.instr(Opcode::IntAlu);
        let p1 = b.instr(Opcode::IntMul);
        let u0 = b.instr(Opcode::IntAlu);
        let u1 = b.instr(Opcode::IntAlu);
        b.edge(p0, u0).unwrap();
        b.edge(p1, u1).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(16); // 4x4 row: tiles 0,1,2,3
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(p0, c(0), 0, Cycle::ZERO);
        sb.place(p1, c(1), 0, Cycle::ZERO);
        // A: 2 hops, latency 4, nominal arrival 1 + 4 = 5.
        sb.comm(p0, c(0), c(2), Cycle::new(1), None);
        // B: 1 hop, latency 3, nominal arrival 2 + 3 = 5.
        sb.comm(p1, c(1), c(2), Cycle::new(2), None);
        sb.place(u0, c(2), 0, Cycle::new(5));
        sb.place(u1, c(2), 0, Cycle::new(6));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = evaluate(&dag, &m, &s).unwrap();
        assert_eq!(r.network.stall_cycles, 1);
        // B's value arrives at 6 instead of 5, so u1 issues at 6.
        assert_eq!(r.makespan, Cycle::new(7));
        assert_eq!(r.network.routes, 2);
    }

    #[test]
    fn utilization_is_sane() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let m = Machine::raw(1);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(i(0), c(0), 0, Cycle::ZERO);
        let s = sb.build(&m).unwrap();
        let r = evaluate(&dag, &m, &s).unwrap();
        assert!((r.fu_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unvalidated_deadlock_is_a_structured_error() {
        // Cross-cluster dependence with no transfer: the consumer can
        // never issue, which used to be an assert! panic.
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        sb.place(d, c(1), 0, Cycle::new(9));
        let s = sb.build(&m).unwrap();
        assert!(validate(&dag, &m, &s).is_err());
        match evaluate(&dag, &m, &s) {
            Err(SimError::NoProgress { remaining, .. }) => assert_eq!(remaining, 1),
            other => panic!("expected NoProgress, got {other:?}"),
        }
    }

    #[test]
    fn relayed_transfer_waits_for_the_first_hop() {
        // A on cluster 0, consumer on cluster 2, value relayed through
        // cluster 1: the second copy may depart only after the first
        // arrives, and the evaluator must execute the chain.
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(3);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        // finish 1; hop 1 departs at 1, arrives c1 at 2; hop 2 departs
        // at 2 from c1, arrives c2 at 3.
        sb.comm(a, c(0), c(1), Cycle::new(1), Some(3));
        sb.comm(a, c(1), c(2), Cycle::new(2), Some(3));
        sb.place(d, c(2), 0, Cycle::new(3));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = evaluate(&dag, &m, &s).unwrap();
        assert_eq!(r.makespan, Cycle::new(4)); // d runs 3..4
        assert_eq!(r.network.routes, 2);
    }

    #[test]
    fn relayed_wire_route_waits_for_the_first_hop() {
        // Same relay shape on a mesh: the 1→2 route may inject only
        // once the 0→1 route has delivered the value to tile 1.
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.edge(a, d).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(a, c(0), 0, Cycle::ZERO);
        // finish 1; 0→1 injects at 1, arrives 4; 1→2 injects at 4,
        // arrives 4 + latency(1→2).
        sb.comm(a, c(0), c(1), Cycle::new(1), None);
        sb.comm(a, c(1), c(2), Cycle::new(4), None);
        let lat = m.comm_latency(c(1), c(2));
        sb.place(d, c(2), 0, Cycle::new(4 + lat));
        let s = sb.build(&m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let r = evaluate(&dag, &m, &s).unwrap();
        assert_eq!(r.network.routes, 2);
        assert_eq!(r.makespan, Cycle::new(4 + lat + 1));
    }
}
