//! Immutable data-dependence DAGs and their builder.
//!
//! A [`Dag`] is constructed once through [`DagBuilder`] and never mutated
//! afterwards: every scheduler in the workspace walks the same graph, and
//! freezing it lets us precompute the topological order and share the
//! graph freely. Nodes are instructions; a directed edge `a -> b` means
//! `b` consumes a value produced by `a` (or is otherwise ordered after
//! `a`), so `b` may start no earlier than `a`'s issue time plus `a`'s
//! latency.

use std::collections::HashSet;

use crate::{InstrId, Instruction, IrError, Opcode};

/// A directed dependence edge between two instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producer instruction.
    pub src: InstrId,
    /// Consumer instruction.
    pub dst: InstrId,
}

impl Edge {
    /// Creates an edge from `src` to `dst`.
    #[must_use]
    pub const fn new(src: InstrId, dst: InstrId) -> Self {
        Edge { src, dst }
    }
}

/// An immutable data-dependence DAG.
///
/// Construct with [`DagBuilder`]. The graph stores forward and backward
/// adjacency and a topological order; all of them are exposed as slices
/// so analyses can iterate without allocation.
#[derive(Clone, Debug)]
pub struct Dag {
    instrs: Vec<Instruction>,
    succs: Vec<Vec<InstrId>>,
    preds: Vec<Vec<InstrId>>,
    topo: Vec<InstrId>,
    n_edges: usize,
}

impl Dag {
    /// Returns the number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the graph has no instructions.
    ///
    /// Note that [`DagBuilder::build`] rejects empty graphs, so a built
    /// `Dag` always returns `false`; the method exists for API
    /// completeness (clippy's `len_without_is_empty`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Returns the number of dependence edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Returns the instruction with id `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for this graph.
    #[must_use]
    pub fn instr(&self, i: InstrId) -> &Instruction {
        &self.instrs[i.index()]
    }

    /// Returns all instructions in id order.
    #[must_use]
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Iterates over all instruction ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = InstrId> + '_ {
        (0..self.instrs.len() as u32).map(InstrId::new)
    }

    /// Returns the direct successors (consumers) of `i`.
    #[must_use]
    pub fn succs(&self, i: InstrId) -> &[InstrId] {
        &self.succs[i.index()]
    }

    /// Returns the direct predecessors (producers) of `i`.
    #[must_use]
    pub fn preds(&self, i: InstrId) -> &[InstrId] {
        &self.preds[i.index()]
    }

    /// Returns both predecessors and successors of `i` — the
    /// "neighbors" that the paper's COMM heuristic inspects.
    pub fn neighbors(&self, i: InstrId) -> impl Iterator<Item = InstrId> + '_ {
        self.preds(i).iter().chain(self.succs(i)).copied()
    }

    /// Returns instruction ids in a topological order (producers before
    /// consumers).
    #[must_use]
    pub fn topo_order(&self) -> &[InstrId] {
        &self.topo
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.succs.iter().enumerate().flat_map(|(src, out)| {
            out.iter()
                .map(move |&dst| Edge::new(InstrId::new(src as u32), dst))
        })
    }

    /// Returns ids of instructions with no predecessors.
    pub fn roots(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.ids().filter(|&i| self.preds(i).is_empty())
    }

    /// Returns ids of instructions with no successors.
    pub fn leaves(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.ids().filter(|&i| self.succs(i).is_empty())
    }

    /// Returns ids of all preplaced instructions.
    pub fn preplaced(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.ids().filter(|&i| self.instr(i).is_preplaced())
    }

    /// Returns the number of preplaced instructions.
    #[must_use]
    pub fn preplaced_count(&self) -> usize {
        self.preplaced().count()
    }
}

/// Incremental builder for [`Dag`].
///
/// # Example
///
/// ```
/// use convergent_ir::{DagBuilder, Opcode, ClusterId};
///
/// # fn main() -> Result<(), convergent_ir::IrError> {
/// let mut b = DagBuilder::new();
/// let ld = b.preplaced_instr(Opcode::Load, ClusterId::new(0));
/// let add = b.instr(Opcode::IntAlu);
/// b.edge(ld, add)?;
/// let dag = b.build()?;
/// assert_eq!(dag.succs(ld), &[add]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DagBuilder {
    instrs: Vec<Instruction>,
    edges: Vec<Edge>,
    edge_set: HashSet<(InstrId, InstrId)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        DagBuilder::default()
    }

    /// Creates a builder with capacity for `n` instructions.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        DagBuilder {
            instrs: Vec::with_capacity(n),
            edges: Vec::with_capacity(n * 2),
            edge_set: HashSet::with_capacity(n * 2),
        }
    }

    /// Adds an ordinary instruction and returns its id.
    pub fn instr(&mut self, opcode: Opcode) -> InstrId {
        self.push(Instruction::new(opcode))
    }

    /// Adds a preplaced instruction pinned to `home` and returns its id.
    pub fn preplaced_instr(&mut self, opcode: Opcode, home: crate::ClusterId) -> InstrId {
        self.push(Instruction::preplaced(opcode, home))
    }

    /// Adds a fully-specified instruction and returns its id.
    pub fn push(&mut self, instr: Instruction) -> InstrId {
        let id = InstrId::new(self.instrs.len() as u32);
        self.instrs.push(instr);
        id
    }

    /// Number of instructions added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if no instructions have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Adds a dependence edge `src -> dst`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownInstr`] if either endpoint has not been
    /// added, [`IrError::SelfEdge`] for `src == dst`, and
    /// [`IrError::DuplicateEdge`] if the edge already exists.
    pub fn edge(&mut self, src: InstrId, dst: InstrId) -> Result<(), IrError> {
        let n = self.instrs.len();
        if src.index() >= n {
            return Err(IrError::UnknownInstr(src));
        }
        if dst.index() >= n {
            return Err(IrError::UnknownInstr(dst));
        }
        if src == dst {
            return Err(IrError::SelfEdge(src));
        }
        if !self.edge_set.insert((src, dst)) {
            return Err(IrError::DuplicateEdge(src, dst));
        }
        self.edges.push(Edge::new(src, dst));
        Ok(())
    }

    /// Adds a dependence edge, ignoring duplicates.
    ///
    /// Workload generators often emit the same dependence from several
    /// syntactic paths; this helper keeps them concise.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`DagBuilder::edge`] except
    /// [`IrError::DuplicateEdge`], which is silently ignored.
    pub fn edge_dedup(&mut self, src: InstrId, dst: InstrId) -> Result<(), IrError> {
        match self.edge(src, dst) {
            Err(IrError::DuplicateEdge(..)) | Ok(()) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Finalizes the graph, verifying acyclicity and computing the
    /// topological order.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Empty`] for a graph with no instructions and
    /// [`IrError::Cycle`] if the edges do not form a DAG.
    pub fn build(self) -> Result<Dag, IrError> {
        let n = self.instrs.len();
        if n == 0 {
            return Err(IrError::Empty);
        }
        let mut succs: Vec<Vec<InstrId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<InstrId>> = vec![Vec::new(); n];
        for e in &self.edges {
            succs[e.src.index()].push(e.dst);
            preds[e.dst.index()].push(e.src);
        }

        // Kahn's algorithm, also detects cycles.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<InstrId> = (0..n as u32)
            .map(InstrId::new)
            .filter(|i| indeg[i.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            topo.push(i);
            for &s in &succs[i.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != n {
            let witness = (0..n as u32)
                .map(InstrId::new)
                .find(|i| indeg[i.index()] > 0)
                .expect("cycle implies a node with nonzero in-degree");
            return Err(IrError::Cycle { witness });
        }

        Ok(Dag {
            instrs: self.instrs,
            n_edges: self.edges.len(),
            succs,
            preds,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterId;

    fn diamond() -> Dag {
        // 0 -> {1, 2} -> 3
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::Load);
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntMul);
        let z = b.instr(Opcode::Store);
        b.edge(a, x).unwrap();
        b.edge(a, y).unwrap();
        b.edge(x, z).unwrap();
        b.edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.succs(InstrId::new(0)).len(), 2);
        assert_eq!(d.preds(InstrId::new(3)).len(), 2);
        assert_eq!(d.roots().collect::<Vec<_>>(), vec![InstrId::new(0)]);
        assert_eq!(d.leaves().collect::<Vec<_>>(), vec![InstrId::new(3)]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; d.len()];
            for (k, &i) in d.topo_order().iter().enumerate() {
                pos[i.index()] = k;
            }
            pos
        };
        for e in d.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()], "{e:?}");
        }
    }

    #[test]
    fn neighbors_are_preds_and_succs() {
        let d = diamond();
        let n: Vec<InstrId> = d.neighbors(InstrId::new(1)).collect();
        assert_eq!(n, vec![InstrId::new(0), InstrId::new(3)]);
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        b.edge(c, a).unwrap();
        assert!(matches!(b.build(), Err(IrError::Cycle { .. })));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), IrError::Empty);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        assert_eq!(
            b.edge(a, InstrId::new(5)),
            Err(IrError::UnknownInstr(InstrId::new(5)))
        );
        assert_eq!(
            b.edge(InstrId::new(9), a),
            Err(IrError::UnknownInstr(InstrId::new(9)))
        );
        assert_eq!(b.edge(a, a), Err(IrError::SelfEdge(a)));
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        assert_eq!(b.edge(a, c), Err(IrError::DuplicateEdge(a, c)));
        // edge_dedup swallows only duplicates.
        b.edge_dedup(a, c).unwrap();
        assert!(b.edge_dedup(a, a).is_err());
    }

    #[test]
    fn preplaced_iteration() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, ClusterId::new(1));
        b.instr(Opcode::IntAlu);
        b.preplaced_instr(Opcode::Store, ClusterId::new(3));
        let d = b.build().unwrap();
        assert_eq!(d.preplaced_count(), 2);
        let homes: Vec<ClusterId> = d
            .preplaced()
            .map(|i| d.instr(i).preplacement().unwrap())
            .collect();
        assert_eq!(homes, vec![ClusterId::new(1), ClusterId::new(3)]);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let d = diamond();
        assert_eq!(d.edges().count(), d.edge_count());
    }

    #[test]
    fn singleton_graph_is_fine() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let d = b.build().unwrap();
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert_eq!(d.topo_order().len(), 1);
    }
}
