//! Error type for IR construction and validation.

use std::error::Error;
use std::fmt;

use crate::InstrId;

/// Errors produced while building or validating dependence graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// An edge referenced an instruction id that does not exist.
    UnknownInstr(InstrId),
    /// A self-edge was requested; dependence graphs have no self-loops.
    SelfEdge(InstrId),
    /// The same edge was added twice.
    DuplicateEdge(InstrId, InstrId),
    /// The edge set contains a cycle, so the graph is not a DAG.
    Cycle {
        /// An instruction known to participate in the cycle.
        witness: InstrId,
    },
    /// The graph is empty; schedulers need at least one instruction.
    Empty,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownInstr(i) => write!(f, "unknown instruction {i}"),
            IrError::SelfEdge(i) => write!(f, "self-edge on instruction {i}"),
            IrError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            IrError::Cycle { witness } => {
                write!(f, "dependence edges form a cycle through {witness}")
            }
            IrError::Empty => write!(f, "dependence graph has no instructions"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            IrError::UnknownInstr(InstrId::new(1)),
            IrError::SelfEdge(InstrId::new(2)),
            IrError::DuplicateEdge(InstrId::new(1), InstrId::new(2)),
            IrError::Cycle {
                witness: InstrId::new(3),
            },
            IrError::Empty,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<IrError>();
    }
}
