//! Cross-scheduler differential fuzzer.
//!
//! Sweeps deterministic pseudo-random and adversarial dependence
//! graphs across machine presets and all five schedulers, holding
//! every produced schedule to the full referee pair:
//!
//! 1. the schedule must pass `validate()`;
//! 2. the cycle-driven evaluator and the event-driven oracle must
//!    execute it and agree on every reported quantity
//!    (`convergent_sim::cross_check`);
//! 3. nothing may panic.
//!
//! A scheduler may *reject* a graph for a legitimate structural reason
//! (no capable cluster, out-of-range home bank, a lint error surfaced
//! by its precondition hook); anything else — an invalid schedule, a
//! simulator disagreement, a panic — is a bug. Every generated graph
//! is also held to the static linter *before* any scheduler sees it:
//! the generators promise lint-clean output (under `--deny warnings`
//! strictness), so any diagnostic is reported as a failure of the
//! pseudo-scheduler `lint`. The first failure per scheduler is
//! greedily shrunk to a minimal graph — re-linting at every shrink
//! step so the repro stays schedulable by `csched verify` — and dumped
//! as a replayable `.cdag`:
//!
//! ```text
//! cargo run --release -p convergent-bench --bin fuzz -- \
//!     [--seed N] [--budget N] [--jobs N] [--dump-dir PATH] \
//!     [--family NAME] [--size N] [--machines a,b,c] [--lint-only] \
//!     [--trace FILE]
//! csched verify <dump-dir>/<repro>.cdag --machine <spec> --scheduler <name>
//! ```
//!
//! The whole sweep is deterministic for a given `--seed`/`--budget`,
//! independent of `--jobs`. `--family`, `--size`, and `--machines` pin
//! or restrict the corresponding case dimension — the targeted mode
//! the check scripts use to drive one large deep-chain unit through
//! every scheduler (exercising the preference map's band re-anchoring
//! end to end) without paying for a full random sweep. `--lint-only`
//! skips the schedulers entirely and just lints the case stream — the
//! cheap smoke the check scripts run over hundreds of graphs.
//!
//! `--trace FILE` additionally replays the first few cases through the
//! convergent driver with telemetry on and writes one Perfetto-loadable
//! Chrome trace (all replays on a shared timeline) — a quick look at
//! what the driver actually did on fuzzer-shaped inputs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use convergent_analysis::{lint_unit, LintOptions};
use convergent_bench::cases::{case_stream, machine_from_spec, Case, FAMILIES, MACHINES};
use convergent_bench::parallel::{default_jobs, jobs_from_args, run_cells};
use convergent_core::telemetry::ChromeTraceSink;
use convergent_core::{sequence_proof_counts, verify_sequence, ConvergentScheduler, Sequence};
use convergent_ir::{to_text, ClusterId, Dag, DagBuilder, Instruction, Opcode, SchedulingUnit};
use convergent_machine::Machine;
use convergent_schedulers::{
    BugScheduler, PccScheduler, RawccScheduler, ScheduleError, Scheduler, UasScheduler,
};
use convergent_sim::{cross_check, validate};

const SCHEDULERS: &[&str] = &["convergent", "uas", "pcc", "rawcc", "bug"];

/// How many cases `--trace` replays through the instrumented
/// convergent driver (rejected cases still advance the timeline but
/// do not count).
const TRACE_CASES: usize = 3;

/// Pseudo-scheduler name under which lint findings on *generated*
/// graphs are reported. Not a real scheduler: lint failures mean the
/// graph generator broke its lint-clean promise, so there is nothing
/// to shrink against a scheduler and the graph is dumped as-is.
const LINT_STAGE: &str = "lint";

fn make_scheduler(name: &str, machine: &Machine) -> Box<dyn Scheduler> {
    match name {
        "convergent" => {
            if machine.comm().register_mapped {
                Box::new(ConvergentScheduler::raw_default())
            } else {
                Box::new(ConvergentScheduler::vliw_tuned())
            }
        }
        "uas" => Box::new(UasScheduler::new()),
        // Capped rounds keep the sweep fast without changing what the
        // referees check.
        "pcc" => Box::new(PccScheduler::new().with_max_rounds(2)),
        "rawcc" => Box::new(RawccScheduler::new()),
        "bug" => Box::new(BugScheduler::new()),
        other => unreachable!("unknown scheduler {other}"),
    }
}

/// What went wrong for one scheduler (or the lint stage) on one case.
struct Failure {
    case_id: usize,
    family: &'static str,
    machine_spec: &'static str,
    scheduler: &'static str,
    message: String,
}

struct CaseOutcome {
    schedules: usize,
    rejects: usize,
    failures: Vec<Failure>,
}

/// A structural rejection is a legitimate answer; anything else the
/// scheduler reports is a bug in the scheduler itself. `Lint` counts:
/// a precondition hook refusing malformed input is the designed
/// behaviour (and generated graphs never trip it — the lint stage in
/// [`run_case`] would have flagged them first).
fn is_legit_reject(e: &ScheduleError) -> bool {
    matches!(
        e,
        ScheduleError::NoCapableCluster(_)
            | ScheduleError::BadHomeCluster { .. }
            | ScheduleError::PreplacementConflict { .. }
            | ScheduleError::LengthMismatch { .. }
            | ScheduleError::Lint { .. }
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs one scheduler through the full referee pair on one graph.
/// Returns `Ok(true)` when a schedule was produced and agreed on,
/// `Ok(false)` for a legitimate rejection, `Err(message)` for a bug.
fn check_one(unit: &SchedulingUnit, machine: &Machine, scheduler: &str) -> Result<bool, String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let sched = make_scheduler(scheduler, machine);
        let schedule = match sched.schedule(unit.dag(), machine) {
            Ok(s) => s,
            Err(e) if is_legit_reject(&e) => return Ok(false),
            Err(e) => return Err(format!("scheduler error: {e}")),
        };
        if let Err(e) = validate(unit.dag(), machine, &schedule) {
            return Err(format!("validation: {e}"));
        }
        match cross_check(unit.dag(), machine, &schedule) {
            Ok(Ok(_)) => Ok(true),
            Ok(Err(e)) => Err(format!("simulation: {e}")),
            Err(d) => Err(format!("cross-check: {d}")),
        }
    }));
    match result {
        Ok(r) => r,
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn run_case(case: &Case, lint_only: bool) -> CaseOutcome {
    let (machine, unit) = case.instantiate();
    let mut out = CaseOutcome {
        schedules: 0,
        rejects: 0,
        failures: Vec::new(),
    };
    // Lint stage first: generated graphs must be spotless, warnings
    // included. A diagnostic here is a generator bug, not a scheduler
    // bug, so the schedulers are skipped for this case.
    let report = lint_unit(&unit, &machine, LintOptions::default());
    if !report.is_clean(true) {
        let rendered: Vec<String> = report
            .diagnostics()
            .iter()
            .map(ToString::to_string)
            .collect();
        out.failures.push(Failure {
            case_id: case.id,
            family: case.family,
            machine_spec: case.machine_spec,
            scheduler: LINT_STAGE,
            message: rendered.join("; "),
        });
        return out;
    }
    if lint_only {
        return out;
    }
    for &scheduler in SCHEDULERS {
        match check_one(&unit, &machine, scheduler) {
            Ok(true) => out.schedules += 1,
            Ok(false) => out.rejects += 1,
            Err(message) => out.failures.push(Failure {
                case_id: case.id,
                family: case.family,
                machine_spec: case.machine_spec,
                scheduler,
                message,
            }),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Shrinking: greedily delete instructions and edges while the failure
// reproduces, then dump the minimal graph as a replayable .cdag.
// ---------------------------------------------------------------------

/// A dependence graph as plain data the shrinker can edit.
#[derive(Clone)]
struct DagSpec {
    instrs: Vec<(Opcode, Option<ClusterId>)>,
    edges: Vec<(usize, usize)>,
}

impl DagSpec {
    fn of(dag: &Dag) -> Self {
        DagSpec {
            instrs: dag
                .instrs()
                .iter()
                .map(|i| (i.opcode(), i.preplacement()))
                .collect(),
            edges: dag
                .edges()
                .map(|e| (e.src.index(), e.dst.index()))
                .collect(),
        }
    }

    fn build(&self) -> Option<Dag> {
        if self.instrs.is_empty() {
            return None;
        }
        let mut b = DagBuilder::with_capacity(self.instrs.len());
        let ids: Vec<_> = self
            .instrs
            .iter()
            .map(|&(op, home)| match home {
                Some(h) => b.push(Instruction::preplaced(op, h)),
                None => b.push(Instruction::new(op)),
            })
            .collect();
        for &(s, d) in &self.edges {
            b.edge(ids[s], ids[d]).ok()?;
        }
        b.build().ok()
    }

    /// The spec with instruction `k` (and its incident edges) removed,
    /// remaining instructions renumbered.
    fn without_instr(&self, k: usize) -> DagSpec {
        let mut instrs = self.instrs.clone();
        instrs.remove(k);
        let shift = |x: usize| if x > k { x - 1 } else { x };
        let edges = self
            .edges
            .iter()
            .filter(|&&(s, d)| s != k && d != k)
            .map(|&(s, d)| (shift(s), shift(d)))
            .collect();
        DagSpec { instrs, edges }
    }

    fn without_edge(&self, k: usize) -> DagSpec {
        let mut edges = self.edges.clone();
        edges.remove(k);
        DagSpec {
            instrs: self.instrs.clone(),
            edges,
        }
    }
}

/// Does this graph still make `scheduler` fail the referee pair?
///
/// Every candidate is re-linted before it may be accepted: a shrunk
/// repro must stay lint-error-free, or `csched verify` on the dumped
/// `.cdag` would refuse to schedule it and the repro would not replay
/// the scheduler bug it documents.
fn still_fails(spec: &DagSpec, machine: &Machine, scheduler: &str) -> Option<String> {
    let dag = spec.build()?;
    let unit = SchedulingUnit::new("shrink", dag);
    if !lint_unit(&unit, machine, LintOptions::default()).is_clean(false) {
        return None;
    }
    check_one(&unit, machine, scheduler).err()
}

/// Greedy minimization: repeatedly drop any single instruction or
/// edge whose removal preserves the failure, until nothing can go.
fn shrink(unit: &SchedulingUnit, machine: &Machine, scheduler: &str) -> (DagSpec, String) {
    let mut spec = DagSpec::of(unit.dag());
    let mut message =
        still_fails(&spec, machine, scheduler).expect("shrink starts from a reproduced failure");
    loop {
        let mut progressed = false;
        let mut k = 0;
        while k < spec.instrs.len() {
            let candidate = spec.without_instr(k);
            if let Some(m) = still_fails(&candidate, machine, scheduler) {
                spec = candidate;
                message = m;
                progressed = true;
            } else {
                k += 1;
            }
        }
        let mut k = 0;
        while k < spec.edges.len() {
            let candidate = spec.without_edge(k);
            if let Some(m) = still_fails(&candidate, machine, scheduler) {
                spec = candidate;
                message = m;
                progressed = true;
            } else {
                k += 1;
            }
        }
        if !progressed {
            return (spec, message);
        }
    }
}

/// `--trace`: replays the first [`TRACE_CASES`] schedulable cases
/// through the convergent driver with full telemetry into one shared
/// Chrome-trace timeline (`advance_base` keeps replays disjoint).
/// Legitimate rejections just skip ahead; the sweep proper has already
/// held these cases to the referees.
fn write_trace(cases: &[Case], path: &str) {
    let mut sink = ChromeTraceSink::new();
    let mut traced = 0usize;
    for case in cases {
        if traced == TRACE_CASES {
            break;
        }
        let (machine, unit) = case.instantiate();
        let sched = if machine.comm().register_mapped {
            ConvergentScheduler::raw_default()
        } else {
            ConvergentScheduler::vliw_tuned()
        };
        if sched
            .schedule_with_sink(unit.dag(), &machine, &mut sink)
            .is_ok()
        {
            traced += 1;
        }
        sink.advance_base();
    }
    sink.save(path).expect("write chrome trace");
    println!(
        "fuzz: traced {traced} convergent run(s) to {path} ({} events)",
        sink.len()
    );
}

/// Verify the convergent sequences the sweep will exercise — static
/// proofs first, probes only for clauses the abstract interpreter
/// leaves unproven — before a single case is generated. A contract
/// violation here taints every downstream schedule, so the sweep
/// refuses to start.
fn verify_convergent_sequences(machines: &[&'static str]) {
    let mut checked: Vec<&'static str> = Vec::new();
    for spec in machines {
        let machine = machine_from_spec(spec);
        let name = if machine.comm().register_mapped {
            "raw"
        } else {
            "vliw-tuned"
        };
        if checked.contains(&name) {
            continue;
        }
        checked.push(name);
        let seq = if machine.comm().register_mapped {
            Sequence::raw()
        } else {
            Sequence::vliw_tuned()
        };
        let (proven, fallback) = sequence_proof_counts(&seq);
        let diags = verify_sequence(&seq, &machine);
        if diags.is_empty() {
            println!(
                "fuzz: sequence {name} contracts hold on {spec}: \
                 {proven} clause(s) proven statically, {fallback} via probes"
            );
        } else {
            eprintln!("fuzz: sequence {name} violates its contracts on {spec}:");
            for d in &diags {
                eprintln!("  {d}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args, default_jobs());
    let mut seed = 0u64;
    let mut budget = 500usize;
    let mut dump_dir = "target/fuzz-repros".to_string();
    let mut family: Option<&'static str> = None;
    let mut size: Option<usize> = None;
    let mut machines: Vec<&'static str> = MACHINES.to_vec();
    let mut lint_only = false;
    let mut trace_path: Option<String> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--seed" => {
                k += 1;
                seed = args[k].parse().expect("--seed takes an integer");
            }
            "--budget" => {
                k += 1;
                budget = args[k].parse().expect("--budget takes an integer");
            }
            "--dump-dir" => {
                k += 1;
                dump_dir = args[k].clone();
            }
            "--family" => {
                k += 1;
                let want = args[k].clone();
                family = Some(
                    FAMILIES
                        .iter()
                        .copied()
                        .find(|f| *f == want)
                        .unwrap_or_else(|| {
                            eprintln!("fuzz: unknown family '{want}' (families: {FAMILIES:?})");
                            std::process::exit(2);
                        }),
                );
            }
            "--size" => {
                k += 1;
                size = Some(args[k].parse().expect("--size takes an integer"));
            }
            "--machines" => {
                k += 1;
                machines = args[k]
                    .split(',')
                    .map(|want| {
                        MACHINES
                            .iter()
                            .copied()
                            .find(|m| *m == want.trim())
                            .unwrap_or_else(|| {
                                eprintln!(
                                    "fuzz: unknown machine '{want}' (use rawN/vliwN presets)"
                                );
                                std::process::exit(2);
                            })
                    })
                    .collect();
            }
            "--lint-only" => lint_only = true,
            "--trace" => {
                k += 1;
                trace_path = Some(args.get(k).cloned().unwrap_or_else(|| {
                    eprintln!("fuzz: --trace takes a file path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("fuzz: unknown option '{other}'");
                eprintln!(
                    "usage: fuzz [--seed N] [--budget N] [--jobs N] [--dump-dir PATH] \
                     [--family NAME] [--size N] [--machines a,b,c] [--lint-only] \
                     [--trace FILE]"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }

    if !lint_only {
        verify_convergent_sequences(&machines);
    }

    let cases = case_stream(seed, budget, family, size, &machines);

    // Panics are caught and reported as failures; silence the default
    // hook's backtrace spew so the summary stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = run_cells(&cases, jobs, |c| run_case(c, lint_only));
    let _ = std::panic::take_hook();

    let schedules: usize = outcomes.iter().map(|o| o.schedules).sum();
    let rejects: usize = outcomes.iter().map(|o| o.rejects).sum();
    let failures: Vec<&Failure> = outcomes.iter().flat_map(|o| &o.failures).collect();
    if lint_only {
        println!(
            "fuzz --lint-only: {budget} cases (seed {seed}), {} linted clean, {} lint failures",
            budget - failures.len(),
            failures.len()
        );
    } else {
        println!(
            "fuzz: {budget} cases (seed {seed}), {schedules} schedules cross-checked, \
             {rejects} legitimate rejects, {} failures",
            failures.len()
        );
    }

    if let Some(path) = &trace_path {
        write_trace(&cases, path);
    }

    if failures.is_empty() {
        return;
    }
    for f in &failures {
        println!(
            "  case {:>4} {:<18} {:<7} {:<11} {}",
            f.case_id, f.family, f.machine_spec, f.scheduler, f.message
        );
    }

    // Shrink and dump the first failure per scheduler.
    std::fs::create_dir_all(&dump_dir).expect("create dump dir");
    let mut dumped: Vec<&str> = Vec::new();
    for f in &failures {
        if dumped.contains(&f.scheduler) {
            continue;
        }
        dumped.push(f.scheduler);
        let case = &cases[f.case_id];
        let (machine, unit) = case.instantiate();
        if f.scheduler == LINT_STAGE {
            // A generator broke its lint-clean promise; there is no
            // scheduler bug to shrink against, so dump the graph
            // as-is for `csched lint` to dissect.
            let name = format!("lint-{}-case{}", f.machine_spec, f.case_id);
            let path = format!("{dump_dir}/{name}.cdag");
            std::fs::write(&path, to_text(&unit)).expect("write lint repro");
            println!(
                "  repro: csched lint {path} --machine {} --deny warnings",
                f.machine_spec
            );
            continue;
        }
        let (spec, message) = shrink(&unit, &machine, f.scheduler);
        let dag = spec.build().expect("shrunk spec still builds");
        let name = format!("repro-{}-{}-case{}", f.scheduler, f.machine_spec, f.case_id);
        let shrunk = SchedulingUnit::new(name.clone(), dag);
        let path = format!("{dump_dir}/{name}.cdag");
        std::fs::write(&path, to_text(&shrunk)).expect("write repro");
        println!(
            "  shrunk case {} to {} instrs / {} edges ({message})",
            f.case_id,
            spec.instrs.len(),
            spec.edges.len()
        );
        println!(
            "  repro: csched verify {path} --machine {} --scheduler {}",
            f.machine_spec, f.scheduler
        );
    }
    std::process::exit(1);
}
