//! The cut-quality governor for region-sharded scheduling.
//!
//! Cutting a *connected* graph gives up the byte-identity the driver
//! promises for monolithic runs, so the quality of the cut is guarded
//! instead: before committing to a decomposition the driver asks the
//! governor to project whether the cut is worth stitching. A projected
//! degenerate cut — most edges crossing shards, or nearly everything
//! left in one shard — makes the driver fall back to the monolithic
//! path, byte-identically. The verdict is surfaced through the
//! `governor_accepts`/`governor_rejects` telemetry counters and
//! [`ShardInfo`](crate::ShardInfo).

use convergent_ir::{Dag, Decomposition};

/// Reject when more than this fraction of all edges would cross
/// shards: `cross * CROSS_EDGE_DEN > total * CROSS_EDGE_NUM`.
const CROSS_EDGE_NUM: usize = 1;
const CROSS_EDGE_DEN: usize = 2;

/// Reject when the largest shard still holds more than 15/16 of the
/// instructions — the cut pays stitch overhead without bounding the
/// superlinear region.
const IMBALANCE_NUM: usize = 15;
const IMBALANCE_DEN: usize = 16;

/// The governor's verdict on one decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutVerdict {
    /// The projected cut is worth stitching.
    Accepted,
    /// Most dependence edges would cross shards; stitching would chase
    /// more cross-shard values than it schedules locally.
    RejectedCrossEdges,
    /// The largest shard still holds nearly the whole graph; cutting
    /// buys no region-size reduction.
    RejectedImbalance,
}

/// What the governor measured about a decomposition, plus its verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutAssessment {
    /// Number of shards in the decomposition.
    pub n_shards: usize,
    /// Instructions in the largest shard.
    pub largest_shard: usize,
    /// Dependence edges whose endpoints land in different shards.
    pub cross_edges: usize,
    /// Total dependence edges in the graph.
    pub total_edges: usize,
    /// The verdict.
    pub verdict: CutVerdict,
}

impl CutAssessment {
    /// `true` when the driver may take the sharded path.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.verdict == CutVerdict::Accepted
    }
}

/// Projects the quality of `dec` before any scheduling happens.
///
/// Pure component sharding (no cross edges) is always accepted — it
/// was the only sharding before recursive cuts existed and carries no
/// stitch coupling. Connected-graph cuts are rejected when degenerate:
/// more than half of all edges crossing shards, or the largest shard
/// still holding more than 15/16 of the graph.
#[must_use]
pub fn assess(dag: &Dag, dec: &Decomposition) -> CutAssessment {
    let n_shards = dec.shards().len();
    let largest_shard = dec.shards().iter().map(|s| s.len()).max().unwrap_or(0);
    let cross_edges = dec.cross_edges().len();
    let total_edges = dag.edge_count();
    let verdict = if cross_edges == 0 {
        CutVerdict::Accepted
    } else if largest_shard * IMBALANCE_DEN > dag.len() * IMBALANCE_NUM {
        CutVerdict::RejectedImbalance
    } else if cross_edges * CROSS_EDGE_DEN > total_edges * CROSS_EDGE_NUM {
        CutVerdict::RejectedCrossEdges
    } else {
        CutVerdict::Accepted
    };
    CutAssessment {
        n_shards,
        largest_shard,
        cross_edges,
        total_edges,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{decompose_with, DagBuilder, Opcode, RegionPolicy};

    #[test]
    fn component_sharding_is_always_accepted() {
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            let x = b.instr(Opcode::Load);
            let y = b.instr(Opcode::IntAlu);
            b.edge(x, y).unwrap();
        }
        let d = b.build().unwrap();
        let dec = decompose_with(&d, &RegionPolicy::new(4));
        assert_eq!(dec.shards().len(), 4);
        let a = assess(&d, &dec);
        assert_eq!(a.cross_edges, 0);
        assert!(a.accepted());
    }

    #[test]
    fn balanced_chain_cut_is_accepted() {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 1..100 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let d = b.build().unwrap();
        let dec = decompose_with(&d, &RegionPolicy::new(8).with_region_size(25));
        assert!(!dec.is_trivial());
        let a = assess(&d, &dec);
        assert!(a.accepted(), "{a:?}");
        assert!(a.cross_edges > 0);
    }

    #[test]
    fn mostly_crossing_cut_is_rejected() {
        // Two "shards" joined by more edges than live inside either:
        // the assessment must reject. Built directly rather than via
        // decompose (which refuses such cuts itself).
        let mut b = DagBuilder::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut lp = b.instr(Opcode::IntAlu);
        left.push(lp);
        for _ in 1..8 {
            let n = b.instr(Opcode::IntAlu);
            b.edge(lp, n).unwrap();
            lp = n;
            left.push(n);
        }
        for _ in 0..8 {
            right.push(b.instr(Opcode::IntAlu));
        }
        for &l in &left {
            for &r in &right {
                b.edge(l, r).unwrap();
            }
        }
        let d = b.build().unwrap();
        // A level cut puts the chain below and the sinks above; the
        // bipartite edges all cross.
        let dec = decompose_with(&d, &RegionPolicy::new(8).with_region_size(8));
        if !dec.is_trivial() {
            let a = assess(&d, &dec);
            assert!(!a.accepted(), "{a:?}");
        }
    }
}
