//! Compile-time throughput of the convergent scheduler itself: how
//! many instructions per second the full pass pipeline (weights,
//! passes, normalization, final list schedule) sustains at several
//! region sizes. Companion to figure10, but focused on the convergent
//! scheduler and machine-readable: results land in
//! `BENCH_compiletime.json`.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin compiletime
//! cargo run --release -p convergent-bench --bin compiletime -- --out path.json
//! ```
//!
//! Measurements run serially (never through the parallel harness) so
//! each row gets an unloaded machine; every row is the best of several
//! repetitions to shed scheduler warm-up noise.

use std::time::Instant;

use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_schedulers::Scheduler;
use convergent_workloads::{layered, LayeredParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|k| args.get(k + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_compiletime.json".to_string());

    let machine = Machine::chorus_vliw(4);
    let sizes = [200usize, 500, 1000, 2000];
    println!(
        "{:>8}{:>12}{:>16}{:>8}",
        "instrs", "best (s)", "instrs/sec", "reps"
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let unit = layered(
            LayeredParams::new(n, 0xF16)
                .with_width(8)
                .with_preplacement(0.5, 4),
        );
        let reps = (2000 / n).clamp(2, 6);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let sched = ConvergentScheduler::vliw_default();
            let start = Instant::now();
            let schedule =
                Scheduler::schedule(&sched, unit.dag(), &machine).expect("convergent schedules");
            let secs = start.elapsed().as_secs_f64();
            assert!(schedule.makespan().get() > 0);
            best = best.min(secs);
        }
        let ips = n as f64 / best;
        println!("{n:>8}{best:>12.4}{ips:>16.0}{reps:>8}");
        rows.push((n, best, ips, reps));
    }

    let mut json = String::from("{\n  \"experiment\": \"compiletime\",\n");
    json.push_str("  \"scheduler\": \"convergent vliw_default\",\n");
    json.push_str("  \"machine\": \"chorus_vliw(4)\",\n  \"rows\": [\n");
    for (k, (n, secs, ips, reps)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"instrs\": {n}, \"best_seconds\": {secs:.6}, \"instrs_per_sec\": {ips:.1}, \"reps\": {reps}}}{}\n",
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write results json");
    println!();
    println!("wrote {out_path}");
}
