//! Register-pressure analysis of finished schedules.
//!
//! "Code sequences that expose more instruction level parallelism
//! also have longer live ranges and higher register pressure. To
//! generate good schedules, the instruction scheduler must somehow
//! exploit as much ILP as possible without leading to a large number
//! of register spills." — Section 1.
//!
//! [`analyze_pressure`] reconstructs the live range of every produced
//! value on every cluster it visits (its producer's cluster from
//! production until its last local use or outgoing transfer; each
//! consumer cluster from the value's arrival until its last use
//! there), sweeps the cluster's timeline, and — where more values are
//! simultaneously live than the register file holds — charges Belady
//! spills (evict the value with the furthest next use; one store at
//! eviction plus one reload before the next use).

use std::collections::HashMap;

use convergent_ir::{Dag, InstrId, OpClass};
use convergent_machine::Machine;

use crate::SpaceTimeSchedule;

/// Register behaviour of one schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PressureReport {
    /// Peak simultaneous live values per cluster.
    pub peak: Vec<u32>,
    /// Estimated spill pairs (store + reload) per cluster.
    pub spills: Vec<u32>,
    /// Estimated extra memory cycles spent spilling (store + reload
    /// latency per spill).
    pub spill_cycles: u32,
}

impl PressureReport {
    /// Highest per-cluster peak.
    #[must_use]
    pub fn max_peak(&self) -> u32 {
        self.peak.iter().copied().max().unwrap_or(0)
    }

    /// Total spill pairs across clusters.
    #[must_use]
    pub fn total_spills(&self) -> u32 {
        self.spills.iter().sum()
    }

    /// Returns `true` if the schedule fits the register files without
    /// spilling.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.total_spills() == 0
    }
}

/// A value's residency on one cluster: `[from, to)` with the cycle of
/// each use (for Belady distances).
#[derive(Clone, Debug)]
struct Residency {
    from: u32,
    to: u32,
    uses: Vec<u32>,
}

/// Computes the register-pressure report for a (validated) schedule.
#[must_use]
pub fn analyze_pressure(
    dag: &Dag,
    machine: &Machine,
    schedule: &SpaceTimeSchedule,
) -> PressureReport {
    let n_clusters = machine.n_clusters();
    // (producer, cluster) → residency under construction.
    let mut res: HashMap<(InstrId, usize), Residency> = HashMap::new();

    for p in dag.ids() {
        if dag.succs(p).is_empty() {
            continue; // stores/branches produce no register value
        }
        let p_op = schedule.op(p);
        let home = p_op.cluster.index();
        res.insert(
            (p, home),
            Residency {
                from: p_op.finish().get(),
                to: p_op.finish().get(),
                uses: Vec::new(),
            },
        );
        // Outgoing transfers keep the value live at home until the
        // last departure, and resident at each destination from
        // arrival.
        for comm in schedule.comms_for(p) {
            let entry = res
                .get_mut(&(p, home))
                .expect("home residency inserted above");
            entry.to = entry.to.max(comm.start.get() + 1);
            entry.uses.push(comm.start.get());
            res.entry((p, comm.to.index())).or_insert(Residency {
                from: comm.arrival().get(),
                to: comm.arrival().get(),
                uses: Vec::new(),
            });
        }
        for &u in dag.succs(p) {
            let u_op = schedule.op(u);
            let uc = u_op.cluster.index();
            let entry = res.entry((p, uc)).or_insert(Residency {
                // No explicit transfer (validation would flag a
                // true violation); treat as arriving at use time.
                from: u_op.start.get(),
                to: u_op.start.get(),
                uses: Vec::new(),
            });
            entry.to = entry.to.max(u_op.start.get() + 1);
            entry.uses.push(u_op.start.get());
        }
    }

    // Per-cluster sweep with Belady eviction.
    let regs = machine.registers_per_cluster();
    let spill_cost = machine.latency(OpClass::Store) + machine.latency(OpClass::Load);
    let mut peak = vec![0u32; n_clusters];
    let mut spills = vec![0u32; n_clusters];
    let mut spill_cycles = 0u32;
    for c in 0..n_clusters {
        let mut intervals: Vec<&Residency> = res
            .iter()
            .filter(|((_, rc), r)| *rc == c && r.to > r.from)
            .map(|(_, r)| r)
            .collect();
        intervals.sort_by_key(|r| (r.from, r.to));
        // Event sweep: active set of (end, sorted future uses).
        let mut active: Vec<(&Residency, usize)> = Vec::new(); // (residency, next-use cursor)
        for r in &intervals {
            let t = r.from;
            active.retain(|(a, _)| a.to > t);
            for slot in &mut active {
                while slot.1 < slot.0.uses.len() && slot.0.uses[slot.1] < t {
                    slot.1 += 1;
                }
            }
            active.push((r, 0));
            peak[c] = peak[c].max(active.len() as u32);
            if active.len() as u32 > regs {
                // Belady: evict the value whose next use is furthest.
                let victim = active
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (a, cursor))| a.uses.get(*cursor).copied().unwrap_or(a.to))
                    .map(|(k, _)| k)
                    .expect("active is non-empty");
                active.swap_remove(victim);
                spills[c] += 1;
                spill_cycles += spill_cost;
            }
        }
    }

    PressureReport {
        peak,
        spills,
        spill_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleBuilder;
    use convergent_ir::{ClusterId, Cycle, DagBuilder, Opcode};

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    /// n producers at t=0.., one consumer of all of them at the end:
    /// all n values are simultaneously live just before the consumer.
    fn fan_in(n: usize) -> (Dag, SpaceTimeSchedule, Machine) {
        let mut b = DagBuilder::new();
        let producers: Vec<_> = (0..n).map(|_| b.instr(Opcode::IntAlu)).collect();
        let sink = b.instr(Opcode::IntAlu);
        for &p in &producers {
            b.edge(p, sink).unwrap();
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(1).with_registers_per_cluster(4);
        let mut sb = ScheduleBuilder::new(&dag);
        for (k, &p) in producers.iter().enumerate() {
            sb.place(p, c(0), 0, Cycle::new(k as u32));
        }
        sb.place(sink, c(0), 0, Cycle::new(n as u32));
        let s = sb.build(&m).unwrap();
        (dag, s, m)
    }

    #[test]
    fn peak_counts_simultaneously_live_values() {
        let (dag, s, m) = fan_in(3);
        let r = analyze_pressure(&dag, &m, &s);
        assert_eq!(r.peak, vec![3]);
        assert!(r.fits());
        assert_eq!(r.total_spills(), 0);
    }

    #[test]
    fn overflow_charges_belady_spills() {
        let (dag, s, m) = fan_in(6); // 6 live values, 4 registers
        let r = analyze_pressure(&dag, &m, &s);
        assert_eq!(r.max_peak(), 5); // eviction keeps active ≤ regs+1 transiently
        assert_eq!(r.total_spills(), 2);
        assert_eq!(r.spill_cycles, 2 * (1 + 3)); // store 1 + load 3, per spill
        assert!(!r.fits());
    }

    #[test]
    fn serial_chain_has_tiny_pressure() {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..9 {
            let nxt = b.instr(Opcode::IntAlu);
            b.edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let dag = b.build().unwrap();
        let m = Machine::raw(1);
        let mut sb = ScheduleBuilder::new(&dag);
        for (k, i) in dag.ids().enumerate() {
            sb.place(i, c(0), 0, Cycle::new(k as u32));
        }
        let s = sb.build(&m).unwrap();
        let r = analyze_pressure(&dag, &m, &s);
        assert!(r.max_peak() <= 2, "{r:?}");
        assert!(r.fits());
    }

    #[test]
    fn transfers_extend_liveness_to_both_clusters() {
        let mut b = DagBuilder::new();
        let p = b.instr(Opcode::IntAlu);
        let u = b.instr(Opcode::IntAlu);
        b.edge(p, u).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        let mut sb = ScheduleBuilder::new(&dag);
        sb.place(p, c(0), 0, Cycle::ZERO);
        sb.comm(p, c(0), c(1), Cycle::new(1), Some(3));
        sb.place(u, c(1), 0, Cycle::new(2));
        let s = sb.build(&m).unwrap();
        let r = analyze_pressure(&dag, &m, &s);
        // Live on both clusters at some point.
        assert_eq!(r.peak, vec![1, 1]);
    }
}
