//! Incremental argmax caches shared by the banded and dense cores.
//!
//! The cache logic is identical for both representations; only the
//! *value lookups* differ, so every helper here is a free function
//! taking the per-instruction [`Cell`] plus whatever values it needs.
//! Keeping them free functions (rather than methods) also lets the
//! cores call them while a row is mutably borrowed: the cell and the
//! row are disjoint fields.

use std::cell::Cell;

/// Weights below this threshold are treated as zero when normalizing.
pub(crate) const EPS: f64 = 1e-12;

/// Sentinel for "no runner-up cluster" in the argmax cache.
pub(crate) const NO_CLUSTER: u16 = u16::MAX;

/// Memoized argmax results for one instruction. `Copy` so it lives in
/// a [`Cell`], letting `&self` readers fill it lazily.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArgmaxCache {
    /// Valid bit for `top_cluster` / `second_cluster`.
    pub cluster_valid: bool,
    /// Valid bit for `top_time`.
    pub time_valid: bool,
    pub top_cluster: u16,
    pub second_cluster: u16,
    pub top_time: u32,
}

impl ArgmaxCache {
    pub(crate) const INVALID: ArgmaxCache = ArgmaxCache {
        cluster_valid: false,
        time_valid: false,
        top_cluster: 0,
        second_cluster: NO_CLUSTER,
        top_time: 0,
    };
}

/// Fills the cluster half of the cache if it is stale, scanning the
/// raw cluster marginals `sums` (length `n_clusters`) under pending
/// scale `s`, and returns `(top, second)`. The scan and tie-breaks
/// mirror a fresh eager scan of the visible values.
pub(crate) fn cluster_cache(cell: &Cell<ArgmaxCache>, sums: &[f64], s: f64) -> (u16, u16) {
    let mut cache = cell.get();
    if !cache.cluster_valid {
        let mut best = 0usize;
        for c in 1..sums.len() {
            if sums[c] * s > sums[best] * s + EPS {
                best = c;
            }
        }
        let mut second: Option<usize> = None;
        for (c, &v) in sums.iter().enumerate() {
            if c == best {
                continue;
            }
            match second {
                Some(b) if v * s <= sums[b] * s + EPS => {}
                _ => second = Some(c),
            }
        }
        cache.top_cluster = best as u16;
        cache.second_cluster = second.map_or(NO_CLUSTER, |c| c as u16);
        cache.cluster_valid = true;
        cell.set(cache);
    }
    (cache.top_cluster, cache.second_cluster)
}

/// Records the effect of a single-cluster marginal change on the
/// cached argmax. Exact: the cache is kept only when the old scan
/// result provably still holds.
pub(crate) fn note_cluster_write(cell: &Cell<ArgmaxCache>, c: usize, increased: bool) {
    let mut cache = cell.get();
    if !cache.cluster_valid {
        return;
    }
    let top = cache.top_cluster as usize;
    let keep = if increased {
        // Boosting the leader changes neither the leader nor the
        // best-of-the-rest.
        c == top
    } else {
        // Shrinking a cluster that is neither top nor runner-up
        // cannot promote it and cannot demote either of them.
        c != top && cache.second_cluster != NO_CLUSTER && c != cache.second_cluster as usize
    };
    if !keep {
        cache.cluster_valid = false;
        cell.set(cache);
    }
}

/// Records the effect of a single-time-slot marginal change on the
/// cached argmax. Exact, including the in-place `top_time` update when
/// a slot overtakes the leader by more than `EPS`. `raw_time` must
/// return the raw (unscaled) time marginal of any slot — for a banded
/// row that is exactly `0.0` outside the band.
pub(crate) fn note_time_write(
    cell: &Cell<ArgmaxCache>,
    t: usize,
    increased: bool,
    s: f64,
    raw_time: impl Fn(usize) -> f64,
) {
    let mut cache = cell.get();
    if !cache.time_valid {
        return;
    }
    let top = cache.top_time as usize;
    if t == top {
        if !increased {
            cache.time_valid = false;
            cell.set(cache);
        }
        return;
    }
    if !increased {
        // Shrinking a non-leader slot never changes the scan.
        return;
    }
    let vt = raw_time(t) * s;
    let vtop = raw_time(top) * s;
    if vt > vtop + EPS {
        // `t` now beats the old leader by more than the tie band,
        // so a fresh scan would end exactly at `t`.
        cache.top_time = t as u32;
        cell.set(cache);
    } else if t < top && vt > vtop - EPS {
        // An earlier slot climbed into the tie band; the
        // earliest-slot tie-break could now pick it. Rescan.
        cache.time_valid = false;
        cell.set(cache);
    }
}

pub(crate) fn invalidate_cluster(cell: &Cell<ArgmaxCache>) {
    let mut cache = cell.get();
    if cache.cluster_valid {
        cache.cluster_valid = false;
        cell.set(cache);
    }
}

pub(crate) fn invalidate_time(cell: &Cell<ArgmaxCache>) {
    let mut cache = cell.get();
    if cache.time_valid {
        cache.time_valid = false;
        cell.set(cache);
    }
}
