//! Criterion end-to-end scheduling-time benchmarks — the microdata
//! behind the paper's Figure 10 compile-time comparison.

use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_schedulers::{PccScheduler, RawccScheduler, Scheduler, UasScheduler};
use convergent_workloads::{layered, LayeredParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let machine = Machine::chorus_vliw(4);
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let unit = layered(LayeredParams::new(n, 7).with_preplacement(0.5, 4));
        let dag = unit.dag();
        group.bench_function(BenchmarkId::new("uas", n), |b| {
            let s = UasScheduler::new();
            b.iter(|| black_box(s.schedule(dag, &machine).unwrap().makespan()));
        });
        group.bench_function(BenchmarkId::new("rawcc", n), |b| {
            let s = RawccScheduler::new();
            b.iter(|| black_box(s.schedule(dag, &machine).unwrap().makespan()));
        });
        group.bench_function(BenchmarkId::new("pcc", n), |b| {
            let s = PccScheduler::new();
            b.iter(|| black_box(s.schedule(dag, &machine).unwrap().makespan()));
        });
        group.bench_function(BenchmarkId::new("convergent", n), |b| {
            let s = ConvergentScheduler::vliw_tuned();
            b.iter(|| black_box(Scheduler::schedule(&s, dag, &machine).unwrap().makespan()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
