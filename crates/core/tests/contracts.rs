//! Contract-checker integration tests: every builtin sequence
//! verifies clean, and a deliberately misbehaving pass fixture exists
//! for each `CS06x` code.

use std::sync::atomic::{AtomicUsize, Ordering};

use convergent_analysis::Code;
use convergent_core::contract::{verify_pass, verify_sequence};
use convergent_core::{Pass, PassContext, Sequence};
use convergent_ir::{ClusterId, InstrId};
use convergent_machine::Machine;

fn codes(diags: &[convergent_analysis::Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn builtin_sequences_verify_clean_everywhere() {
    for machine in [
        Machine::raw(4),
        Machine::raw(16),
        Machine::chorus_vliw(2),
        Machine::chorus_vliw(4),
        Machine::single_cluster(),
    ] {
        for seq in [Sequence::raw(), Sequence::vliw(), Sequence::vliw_tuned()] {
            let diags = verify_sequence(&seq, &machine);
            assert!(
                diags.is_empty(),
                "{:?} on {}: {diags:?}",
                seq.names(),
                machine.name()
            );
        }
    }
}

/// Writes positive weight one slot past an instruction's feasible
/// window — the CS060 violation.
struct OutOfWindowPass;

impl Pass for OutOfWindowPass {
    fn name(&self) -> &'static str {
        "BADWINDOW"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let n_slots = ctx.weights.n_slots() as u32;
        for i in ctx.dag.ids() {
            let (_, hi) = ctx.weights.window(i);
            if hi + 1 < n_slots {
                ctx.weights.set(i, ClusterId::new(0), hi + 1, 0.5);
                return;
            }
        }
    }
}

#[test]
fn out_of_window_write_is_flagged_cs060() {
    let diags = verify_pass(&OutOfWindowPass, &Machine::raw(4));
    assert!(codes(&diags).contains(&Code::OutOfWindowWrite), "{diags:?}");
    for d in &diags {
        assert!(!d.instrs.is_empty(), "CS060 must name the instruction");
        assert!(d.witness.is_some(), "CS060 must carry the offending op");
    }
}

/// Scales by a process-global counter, so two identically seeded runs
/// diverge — the CS061 violation.
struct NondetPass;

static TICKS: AtomicUsize = AtomicUsize::new(0);

impl Pass for NondetPass {
    fn name(&self) -> &'static str {
        "NONDET"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let tick = TICKS.fetch_add(1, Ordering::Relaxed);
        ctx.weights
            .scale_cluster(InstrId::new(0), ClusterId::new(0), 1.5 + tick as f64);
    }
}

#[test]
fn hidden_state_is_flagged_cs061() {
    let diags = verify_pass(&NondetPass, &Machine::raw(4));
    assert!(
        codes(&diags).contains(&Code::NondeterministicPass),
        "{diags:?}"
    );
}

/// Plants two `1e308` weights on one materialized instruction so the
/// stored total overflows to infinity and the post-pass normalization
/// collapses the row to zero — the CS062 violation. (Without the
/// `materialize`, the lazy scale factor keeps the stored row finite
/// and normalization survives the overflow.)
struct OverflowPass;

impl Pass for OverflowPass {
    fn name(&self) -> &'static str {
        "OVERFLOW"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        let i = InstrId::new(0);
        let (lo, _) = ctx.weights.window(i);
        ctx.weights.materialize(i);
        ctx.weights.set(i, ClusterId::new(0), lo, 1e308);
        ctx.weights.set(i, ClusterId::new(1), lo, 1e308);
    }
}

#[test]
fn broken_normalization_is_flagged_cs062() {
    let diags = verify_pass(&OverflowPass, &Machine::raw(4));
    assert!(
        codes(&diags).contains(&Code::BrokenNormalization),
        "{diags:?}"
    );
}

/// Forbids the home cluster of the first preplaced instruction it
/// sees — the CS063 violation.
struct ForbidHomePass;

impl Pass for ForbidHomePass {
    fn name(&self) -> &'static str {
        "FORBIDHOME"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        for i in ctx.dag.ids() {
            if let Some(home) = ctx.dag.instr(i).preplacement() {
                ctx.weights.forbid_cluster(i, home);
                return;
            }
        }
    }
}

#[test]
fn demoting_a_preplacement_is_flagged_cs063() {
    let diags = verify_pass(&ForbidHomePass, &Machine::raw(4));
    assert!(
        codes(&diags).contains(&Code::PreplacementDemoted),
        "{diags:?}"
    );
}

#[test]
fn verify_sequence_dedups_repeated_offenders() {
    // The same misdeclared pass three times yields each distinct
    // finding once, not three times.
    let seq = Sequence::new()
        .with(ForbidHomePass)
        .with(ForbidHomePass)
        .with(ForbidHomePass);
    let diags = verify_sequence(&seq, &Machine::raw(4));
    let demotions = diags
        .iter()
        .filter(|d| d.code == Code::PreplacementDemoted)
        .count();
    assert_eq!(demotions, 1, "{diags:?}");
}
