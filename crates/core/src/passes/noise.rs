//! NOISE — noise introduction.
//!
//! "This pass introduces a small amount of noise in the weight
//! distribution. The noise helps break symmetry and spreads
//! instructions around to facilitate scheduling for parallelism."
//!
//! The paper's formula adds `rand()/RAND_MAX` (a uniform value in the
//! unit interval) to every slot, which, with weights normalized to sum
//! to one, makes the noise the *dominant* component of the map until
//! later passes multiply their preferences in. That dominance is the
//! point: with an instruction's feasible window holding `k` cells, its
//! post-NOISE cluster marginals carry roughly `1/sqrt(12k)` relative
//! jitter, enough to overcome mild deterministic biases like FIRST's
//! 1.2 factor for a healthy fraction of instructions, which is how
//! work spreads off the first cluster. We reproduce the formula with
//! one refinement: noise is only added inside each instruction's
//! feasible window and clusters, so INITTIME's correctness squash
//! survives (documented in DESIGN.md).
//!
//! # Prologue / kernel split
//!
//! RNG consumption is order-sensitive: the stream must be drawn in the
//! historical `(i ascending, feasible c ascending, t in lo..=hi)`
//! order or every schedule seeded before this refactor would change.
//! The [`Pass::row_kernel`] prologue therefore pre-draws the whole
//! noise vector into [`PassScratch::a`] in exactly that order, with
//! per-instruction offsets in [`PassScratch::idx`]; the kernel then
//! replays each instruction's slice through [`RowOps::noise_fill`],
//! a pure row operation threads can apply to disjoint row chunks.

use convergent_analysis::{Determinism, EffectOp, Interval, PassEffect};
use convergent_ir::{Dag, TimeAnalysis};
use convergent_machine::Machine;
use rand::rngs::StdRng;
use rand::Rng;

use crate::weights::RowOps;
use crate::{Pass, PassContext, PassScratch, PreferenceMap, RowKernel};

/// The NOISE pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Noise {
    amplitude: f64,
}

impl Noise {
    /// Creates the pass with the paper's amplitude: uniform noise in
    /// `[0, 1]` per feasible cell (weights are normalized, so this
    /// dominates until later passes assert their preferences).
    #[must_use]
    pub fn new() -> Self {
        Noise { amplitude: 1.0 }
    }

    /// Sets the noise amplitude (the upper bound of the per-cell
    /// uniform addition).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or not finite.
    #[must_use]
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "amplitude must be a non-negative finite number"
        );
        self.amplitude = amplitude;
        self
    }
}

impl Default for Noise {
    fn default() -> Self {
        Noise::new()
    }
}

/// The data-parallel half of NOISE: a pre-drawn noise vector sliced
/// per instruction.
struct NoiseKernel<'k> {
    amplitude: f64,
    /// One `U(0, 1)` draw per feasible `(c, t)` cell of each
    /// instruction, in the historical per-cell order.
    draws: &'k [f64],
    /// `draws[idx[i]..idx[i + 1]]` is instruction `i`'s slice.
    idx: &'k [usize],
}

impl RowKernel for NoiseKernel<'_> {
    fn apply(&self, rows: &mut dyn RowOps) {
        rows.noise_fill_rows(self.amplitude, self.draws, self.idx);
    }
}

impl Pass for Noise {
    fn name(&self) -> &'static str {
        "NOISE"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        if let Some(kernel) = self.row_kernel(
            ctx.dag,
            ctx.machine,
            ctx.time,
            ctx.rng,
            ctx.weights,
            ctx.scratch,
        ) {
            kernel.apply(ctx.weights);
        }
    }

    fn row_kernel<'k>(
        &self,
        _dag: &'k Dag,
        _machine: &'k Machine,
        _time: &'k TimeAnalysis,
        rng: &mut StdRng,
        weights: &PreferenceMap,
        scratch: &'k mut PassScratch,
    ) -> Option<Box<dyn RowKernel + 'k>> {
        // Size the draw buffer up front (one O(n·C) streaming sweep)
        // so a multi-hundred-MB vector never pays push-doubling
        // reallocs and the counting itself pays one layout dispatch.
        weights.feasible_cells_into(&mut scratch.idx);
        let cells = *scratch.idx.last().expect("layout has n_instrs + 1 entries");
        // The draw stream is one rng.gen() per feasible cell in the
        // historical order, which is simply `cells` consecutive draws:
        // the per-cell (c, t) bookkeeping only decides where each draw
        // lands, and that is the kernel's job.
        scratch.a.clear();
        scratch.a.reserve_exact(cells);
        scratch.a.extend((0..cells).map(|_| rng.gen::<f64>()));
        let scratch: &'k PassScratch = scratch;
        Some(Box::new(NoiseKernel {
            amplitude: self.amplitude,
            draws: &scratch.a,
            idx: &scratch.idx,
        }))
    }

    fn effect(&self) -> PassEffect {
        // Each feasible in-window cell gets `cur + amplitude·U(0,1)`:
        // an additive, support-preserving write bounded by a
        // normalized cell (≤ 1) plus the amplitude.
        let eff = PassEffect::new(vec![EffectOp::Absolute {
            in_window: true,
            value: Interval::new(0.0, 1.0 + self.amplitude),
            randomized: true,
            preserves_support: true,
        }])
        .with_determinism(Determinism::SeededRng)
        .reads_windows();
        if self.amplitude > 0.0 {
            eff.breaks_symmetry()
        } else {
            eff
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use crate::passes::InitTime;
    use convergent_ir::{ClusterId, DagBuilder, InstrId, Opcode};
    use convergent_machine::Machine;

    fn flat_dag(n: usize) -> convergent_ir::Dag {
        let mut b = DagBuilder::new();
        for _ in 0..n {
            b.instr(Opcode::IntAlu);
        }
        b.build().unwrap()
    }

    #[test]
    fn noise_breaks_cluster_symmetry() {
        let mut rig = Rig::new(flat_dag(8), Machine::raw(4));
        rig.run(&Noise::new());
        rig.weights.assert_invariants(1e-9);
        // At least one instruction must now prefer a non-zero cluster
        // (with all-uniform weights, ties all break to cluster 0).
        let prefs: Vec<ClusterId> = rig
            .dag
            .ids()
            .map(|i| rig.weights.preferred_cluster(i))
            .collect();
        assert!(prefs.iter().any(|&c| c != ClusterId::new(0)), "{prefs:?}");
    }

    #[test]
    fn noise_respects_feasibility() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&InitTime::new());
        rig.run(&Noise::new());
        rig.weights.assert_invariants(1e-9);
        // y's window is [1,1]; noise must not leak into slot 0.
        assert_eq!(rig.weights.time_weight(InstrId::new(1), 0), 0.0);
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let mut rig = Rig::new(flat_dag(4), Machine::raw(4));
        let before = rig.weights.clone();
        rig.run(&Noise::new().with_amplitude(0.0));
        for i in rig.dag.ids() {
            for c in rig.machine.cluster_ids() {
                assert!(
                    (rig.weights.cluster_weight(i, c) - before.cluster_weight(i, c)).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = Rig::new(flat_dag(6), Machine::raw(4));
        let mut b = Rig::new(flat_dag(6), Machine::raw(4));
        a.run(&Noise::new());
        b.run(&Noise::new());
        for i in a.dag.ids() {
            assert_eq!(
                a.weights.preferred_cluster(i),
                b.weights.preferred_cluster(i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn negative_amplitude_panics() {
        let _ = Noise::new().with_amplitude(-1.0);
    }
}
