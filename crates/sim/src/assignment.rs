//! Spatial assignments: instruction → cluster maps.

use convergent_ir::{ClusterId, Dag, InstrId};

/// A complete instruction-to-cluster assignment for one DAG.
///
/// This is the interface between assignment techniques (convergent
/// scheduling, PCC, Rawcc clustering, BUG) and the shared list
/// scheduler: whoever produces the `Assignment`, the same machinery
/// turns it into a [`crate::SpaceTimeSchedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    clusters: Vec<ClusterId>,
}

impl Assignment {
    /// Creates an assignment placing every instruction on `cluster`.
    #[must_use]
    pub fn uniform(n_instrs: usize, cluster: ClusterId) -> Self {
        Assignment {
            clusters: vec![cluster; n_instrs],
        }
    }

    /// Creates an assignment from a per-instruction cluster vector
    /// (indexed by instruction id).
    #[must_use]
    pub fn from_vec(clusters: Vec<ClusterId>) -> Self {
        Assignment { clusters }
    }

    /// Number of instructions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if the assignment covers no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster assigned to instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cluster(&self, i: InstrId) -> ClusterId {
        self.clusters[i.index()]
    }

    /// Reassigns instruction `i` to `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: InstrId, cluster: ClusterId) {
        self.clusters[i.index()] = cluster;
    }

    /// Per-instruction clusters, indexed by instruction id.
    #[must_use]
    pub fn as_slice(&self) -> &[ClusterId] {
        &self.clusters
    }

    /// Number of instructions assigned to each cluster, indexed by
    /// cluster id (length `n_clusters`).
    #[must_use]
    pub fn loads(&self, n_clusters: usize) -> Vec<usize> {
        let mut loads = vec![0usize; n_clusters];
        for c in &self.clusters {
            loads[c.index()] += 1;
        }
        loads
    }

    /// Number of dependence edges that cross clusters under this
    /// assignment — the communication volume a schedule will pay for.
    #[must_use]
    pub fn cut_edges(&self, dag: &Dag) -> usize {
        dag.edges()
            .filter(|e| self.cluster(e.src) != self.cluster(e.dst))
            .count()
    }

    /// Returns `true` if every preplaced instruction in `dag` sits on
    /// its home cluster.
    #[must_use]
    pub fn respects_preplacement(&self, dag: &Dag) -> bool {
        dag.preplaced().all(|i| {
            dag.instr(i)
                .preplacement()
                .is_some_and(|home| self.cluster(i) == home)
        })
    }
}

impl FromIterator<ClusterId> for Assignment {
    fn from_iter<T: IntoIterator<Item = ClusterId>>(iter: T) -> Self {
        Assignment {
            clusters: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};

    fn pair_dag() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.preplaced_instr(Opcode::Load, ClusterId::new(1));
        let c = b.instr(Opcode::IntAlu);
        b.edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn uniform_and_set() {
        let mut a = Assignment::uniform(3, ClusterId::new(0));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        a.set(InstrId::new(1), ClusterId::new(2));
        assert_eq!(a.cluster(InstrId::new(1)), ClusterId::new(2));
        assert_eq!(a.loads(3), vec![2, 0, 1]);
    }

    #[test]
    fn cut_edges_counts_cross_cluster_deps() {
        let dag = pair_dag();
        let same = Assignment::uniform(2, ClusterId::new(1));
        assert_eq!(same.cut_edges(&dag), 0);
        let split = Assignment::from_vec(vec![ClusterId::new(1), ClusterId::new(0)]);
        assert_eq!(split.cut_edges(&dag), 1);
    }

    #[test]
    fn preplacement_check() {
        let dag = pair_dag();
        let good = Assignment::uniform(2, ClusterId::new(1));
        assert!(good.respects_preplacement(&dag));
        let bad = Assignment::uniform(2, ClusterId::new(0));
        assert!(!bad.respects_preplacement(&dag));
    }

    #[test]
    fn from_iterator() {
        let a: Assignment = (0..4u16).map(ClusterId::new).collect();
        assert_eq!(a.cluster(InstrId::new(3)), ClusterId::new(3));
    }
}
