//! The preference map — the paper's central data structure.
//!
//! Section 3 of the paper: preferences are "a three dimensional matrix
//! `W[i,c,t]`, where `i` spans over all instructions in the scheduling
//! unit, `c` spans over the clusters in the architecture, and `t` spans
//! over time", with "as many time slots as the critical-path length".
//! Two invariants are maintained:
//!
//! ```text
//! ∀ i,t,c : 0 ≤ W[i,t,c] ≤ 1
//! ∀ i     : Σ_{t,c} W[i,t,c] = 1
//! ```
//!
//! Passes talk to each other exclusively by reading and nudging these
//! weights; [`PreferenceMap`] provides the basic operations the paper
//! lists (scaling, normalization, per-dimension combination) plus the
//! derived quantities (`preferred_cluster`, `preferred_time`,
//! `runnerup_cluster`, `confidence`). Marginal sums over time and
//! clusters are maintained incrementally so the derived quantities are
//! cheap, as the paper prescribes.
//!
//! In addition to raw weights, the map records each instruction's
//! *feasibility*: the `[earliest, latest]` time window established by
//! INITTIME and the set of clusters that can execute the instruction.
//! Passes that (re)introduce weight — noise injection, marginal
//! blending — respect feasibility so that a correctness decision, once
//! made, cannot be silently undone by a later heuristic.

use convergent_ir::{ClusterId, Cycle, InstrId};

/// Weights below this threshold are treated as zero when normalizing.
const EPS: f64 = 1e-12;

/// A dense `instructions × clusters × time` preference map.
///
/// # Example
///
/// ```
/// use convergent_core::PreferenceMap;
/// use convergent_ir::{ClusterId, InstrId};
///
/// let mut w = PreferenceMap::new(2, 4, 10);
/// let i = InstrId::new(0);
/// // Initially uniform: no preference, confidence 1.
/// assert_eq!(w.confidence(i), 1.0);
/// // Nudge instruction 0 toward cluster 2 and re-normalize.
/// w.scale_cluster(i, ClusterId::new(2), 5.0);
/// w.normalize(i);
/// assert_eq!(w.preferred_cluster(i), ClusterId::new(2));
/// assert!(w.confidence(i) > 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct PreferenceMap {
    n_instrs: usize,
    n_clusters: usize,
    n_slots: usize,
    w: Vec<f64>,
    cluster_sum: Vec<f64>,
    time_sum: Vec<f64>,
    total: Vec<f64>,
    window: Vec<(u32, u32)>,
    cluster_ok: Vec<bool>,
}

impl PreferenceMap {
    /// Creates a map with uniform preferences.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        assert!(n_instrs > 0, "need at least one instruction");
        assert!(n_clusters > 0, "need at least one cluster");
        assert!(n_slots > 0, "need at least one time slot");
        let per = 1.0 / (n_clusters * n_slots) as f64;
        PreferenceMap {
            n_instrs,
            n_clusters,
            n_slots,
            w: vec![per; n_instrs * n_clusters * n_slots],
            cluster_sum: vec![per * n_slots as f64; n_instrs * n_clusters],
            time_sum: vec![per * n_clusters as f64; n_instrs * n_slots],
            total: vec![1.0; n_instrs],
            window: vec![(0, n_slots as u32 - 1); n_instrs],
            cluster_ok: vec![true; n_instrs * n_clusters],
        }
    }

    /// Number of instructions.
    #[must_use]
    pub fn n_instrs(&self) -> usize {
        self.n_instrs
    }

    /// Number of clusters.
    #[must_use]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of time slots (the critical-path length).
    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    #[inline]
    fn idx(&self, i: InstrId, c: ClusterId, t: u32) -> usize {
        debug_assert!(i.index() < self.n_instrs);
        debug_assert!(c.index() < self.n_clusters);
        debug_assert!((t as usize) < self.n_slots);
        (i.index() * self.n_clusters + c.index()) * self.n_slots + t as usize
    }

    /// The weight `W[i, c, t]`.
    #[must_use]
    pub fn get(&self, i: InstrId, c: ClusterId, t: u32) -> f64 {
        self.w[self.idx(i, c, t)]
    }

    /// Sets `W[i, c, t]`, updating marginals.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn set(&mut self, i: InstrId, c: ClusterId, t: u32, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
        let k = self.idx(i, c, t);
        let delta = value - self.w[k];
        self.w[k] = value;
        self.cluster_sum[i.index() * self.n_clusters + c.index()] += delta;
        self.time_sum[i.index() * self.n_slots + t as usize] += delta;
        self.total[i.index()] += delta;
    }

    /// Adds `delta` to `W[i, c, t]`, clamping at zero.
    pub fn add(&mut self, i: InstrId, c: ClusterId, t: u32, delta: f64) {
        let cur = self.get(i, c, t);
        self.set(i, c, t, (cur + delta).max(0.0));
    }

    /// Multiplies `W[i, c, t]` by `factor` (≥ 0).
    pub fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        let cur = self.get(i, c, t);
        self.set(i, c, t, cur * factor);
    }

    /// Multiplies every time slot of `(i, c)` by `factor`.
    pub fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let base = self.idx(i, c, 0);
        let mut delta = 0.0;
        for t in 0..self.n_slots {
            let old = self.w[base + t];
            let new = old * factor;
            self.w[base + t] = new;
            self.time_sum[i.index() * self.n_slots + t] += new - old;
            delta += new - old;
        }
        self.cluster_sum[i.index() * self.n_clusters + c.index()] += delta;
        self.total[i.index()] += delta;
    }

    /// Multiplies every cluster's weight at time `t` by `factor`.
    pub fn scale_time(&mut self, i: InstrId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let mut delta = 0.0;
        for c in 0..self.n_clusters {
            let k = self.idx(i, ClusterId::new(c as u16), t);
            let old = self.w[k];
            let new = old * factor;
            self.w[k] = new;
            self.cluster_sum[i.index() * self.n_clusters + c] += new - old;
            delta += new - old;
        }
        self.time_sum[i.index() * self.n_slots + t as usize] += delta;
        self.total[i.index()] += delta;
    }

    /// Restricts `i` to time slots `[lo, hi]`, zeroing all weight
    /// outside and recording the window (INITTIME's squash).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi` is out of range.
    pub fn set_window(&mut self, i: InstrId, lo: u32, hi: u32) {
        assert!(lo <= hi, "window must be non-empty");
        assert!((hi as usize) < self.n_slots, "window exceeds time slots");
        self.window[i.index()] = (lo, hi);
        for t in 0..self.n_slots as u32 {
            if t < lo || t > hi {
                for c in 0..self.n_clusters {
                    self.set(i, ClusterId::new(c as u16), t, 0.0);
                }
            }
        }
    }

    /// The feasible `[lo, hi]` window of `i`.
    #[must_use]
    pub fn window(&self, i: InstrId) -> (u32, u32) {
        self.window[i.index()]
    }

    /// Marks cluster `c` as unable to execute `i`, zeroing its weight.
    pub fn forbid_cluster(&mut self, i: InstrId, c: ClusterId) {
        self.cluster_ok[i.index() * self.n_clusters + c.index()] = false;
        self.scale_cluster(i, c, 0.0);
    }

    /// Returns `true` if cluster `c` may execute `i`.
    #[must_use]
    pub fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        self.cluster_ok[i.index() * self.n_clusters + c.index()]
    }

    /// The cluster marginal `Σ_t W[i, c, t]`.
    #[must_use]
    pub fn cluster_weight(&self, i: InstrId, c: ClusterId) -> f64 {
        self.cluster_sum[i.index() * self.n_clusters + c.index()]
    }

    /// The time marginal `Σ_c W[i, c, t]`.
    #[must_use]
    pub fn time_weight(&self, i: InstrId, t: u32) -> f64 {
        self.time_sum[i.index() * self.n_slots + t as usize]
    }

    /// Total weight of `i` (1 when normalized).
    #[must_use]
    pub fn total(&self, i: InstrId) -> f64 {
        self.total[i.index()]
    }

    /// `argmax_c Σ_t W[i, c, t]` — the paper's `preferred_cluster`.
    /// Ties break toward the lowest cluster id.
    #[must_use]
    pub fn preferred_cluster(&self, i: InstrId) -> ClusterId {
        let base = i.index() * self.n_clusters;
        let mut best = 0usize;
        for c in 1..self.n_clusters {
            if self.cluster_sum[base + c] > self.cluster_sum[base + best] + EPS {
                best = c;
            }
        }
        ClusterId::new(best as u16)
    }

    /// The second-best cluster, or `None` on single-cluster machines.
    #[must_use]
    pub fn runnerup_cluster(&self, i: InstrId) -> Option<ClusterId> {
        if self.n_clusters < 2 {
            return None;
        }
        let pref = self.preferred_cluster(i).index();
        let base = i.index() * self.n_clusters;
        let mut best: Option<usize> = None;
        for c in 0..self.n_clusters {
            if c == pref {
                continue;
            }
            match best {
                Some(b) if self.cluster_sum[base + c] <= self.cluster_sum[base + b] + EPS => {}
                _ => best = Some(c),
            }
        }
        best.map(|c| ClusterId::new(c as u16))
    }

    /// `argmax_t Σ_c W[i, c, t]` — the paper's `preferred_time`.
    /// Ties break toward the earliest slot.
    #[must_use]
    pub fn preferred_time(&self, i: InstrId) -> Cycle {
        let base = i.index() * self.n_slots;
        let mut best = 0usize;
        for t in 1..self.n_slots {
            if self.time_sum[base + t] > self.time_sum[base + best] + EPS {
                best = t;
            }
        }
        Cycle::new(best as u32)
    }

    /// The paper's confidence: the ratio of the top two cluster
    /// marginals. Returns `f64::INFINITY` when there is no runner-up
    /// or its weight is (numerically) zero.
    #[must_use]
    pub fn confidence(&self, i: InstrId) -> f64 {
        let top = self.cluster_weight(i, self.preferred_cluster(i));
        match self.runnerup_cluster(i) {
            Some(r) => {
                let second = self.cluster_weight(i, r);
                if second <= EPS {
                    f64::INFINITY
                } else {
                    top / second
                }
            }
            None => f64::INFINITY,
        }
    }

    /// Renormalizes `i` so its weights sum to 1. If every weight was
    /// squashed to (numerical) zero, the distribution resets to
    /// uniform over the instruction's feasible window and clusters, so
    /// feasibility decisions survive aggressive scaling.
    pub fn normalize(&mut self, i: InstrId) {
        let tot = self.total[i.index()];
        if tot > EPS {
            let inv = 1.0 / tot;
            let base = self.idx(i, ClusterId::new(0), 0);
            for k in 0..self.n_clusters * self.n_slots {
                self.w[base + k] *= inv;
            }
            for c in 0..self.n_clusters {
                self.cluster_sum[i.index() * self.n_clusters + c] *= inv;
            }
            for t in 0..self.n_slots {
                self.time_sum[i.index() * self.n_slots + t] *= inv;
            }
            self.total[i.index()] = 1.0;
        } else {
            self.reset_uniform(i);
        }
    }

    /// Resets `i` to a uniform distribution over its feasible window
    /// and clusters.
    pub fn reset_uniform(&mut self, i: InstrId) {
        let (lo, hi) = self.window[i.index()];
        let feasible: Vec<usize> = (0..self.n_clusters)
            .filter(|&c| self.cluster_ok[i.index() * self.n_clusters + c])
            .collect();
        // A machine mismatch could leave no feasible cluster; fall back
        // to all clusters rather than a degenerate all-zero row.
        let clusters: Vec<usize> = if feasible.is_empty() {
            (0..self.n_clusters).collect()
        } else {
            feasible
        };
        let slots = (hi - lo + 1) as usize;
        let per = 1.0 / (clusters.len() * slots) as f64;
        // Clear, then fill.
        let base = self.idx(i, ClusterId::new(0), 0);
        for k in 0..self.n_clusters * self.n_slots {
            self.w[base + k] = 0.0;
        }
        for c in 0..self.n_clusters {
            self.cluster_sum[i.index() * self.n_clusters + c] = 0.0;
        }
        for t in 0..self.n_slots {
            self.time_sum[i.index() * self.n_slots + t] = 0.0;
        }
        for &c in &clusters {
            for t in lo..=hi {
                let k = self.idx(i, ClusterId::new(c as u16), t);
                self.w[k] = per;
            }
            self.cluster_sum[i.index() * self.n_clusters + c] = per * slots as f64;
        }
        for t in lo..=hi {
            self.time_sum[i.index() * self.n_slots + t as usize] = per * clusters.len() as f64;
        }
        self.total[i.index()] = 1.0;
    }

    /// Renormalizes every instruction.
    pub fn normalize_all(&mut self) {
        for i in 0..self.n_instrs {
            self.normalize(InstrId::new(i as u32));
        }
    }

    /// Reshapes `i`'s cluster marginal to `target` (one entry per
    /// cluster; will be normalized internally), preserving each
    /// cluster's time profile. Clusters whose current weight is zero
    /// but whose target is positive receive a uniform time profile
    /// over the feasible window. Infeasible clusters stay at zero.
    ///
    /// This is the paper's "linear combination … only along the space
    /// dimension", used by PATHPROP.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != n_clusters`.
    pub fn set_cluster_marginal(&mut self, i: InstrId, target: &[f64]) {
        assert_eq!(target.len(), self.n_clusters, "one target per cluster");
        let masked: Vec<f64> = (0..self.n_clusters)
            .map(|c| {
                if self.cluster_ok[i.index() * self.n_clusters + c] {
                    target[c].max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        let sum: f64 = masked.iter().sum();
        if sum <= EPS {
            return; // nothing expressible: leave unchanged
        }
        let (lo, hi) = self.window[i.index()];
        let slots = (hi - lo + 1) as f64;
        for c in 0..self.n_clusters {
            let cid = ClusterId::new(c as u16);
            let want = masked[c] / sum;
            let cur = self.cluster_weight(i, cid);
            if cur > EPS {
                self.scale_cluster(i, cid, want / cur);
            } else if want > EPS {
                for t in lo..=hi {
                    self.set(i, cid, t, want / slots);
                }
            }
        }
        self.normalize(i);
    }

    /// Checks both paper invariants to `tolerance`; used by tests.
    ///
    /// # Panics
    ///
    /// Panics (with context) if an invariant is broken.
    pub fn assert_invariants(&self, tolerance: f64) {
        for i in 0..self.n_instrs {
            let mut sum = 0.0;
            for c in 0..self.n_clusters {
                for t in 0..self.n_slots {
                    let v = self.get(
                        InstrId::new(i as u32),
                        ClusterId::new(c as u16),
                        t as u32,
                    );
                    assert!(
                        (0.0 - tolerance..=1.0 + tolerance).contains(&v),
                        "W[i{i},c{c},t{t}] = {v} out of [0,1]"
                    );
                    sum += v;
                }
            }
            assert!(
                (sum - 1.0).abs() <= tolerance,
                "Σ W[i{i}] = {sum}, expected 1"
            );
            // Marginal bookkeeping must agree with the dense data.
            let tot = self.total[i];
            assert!(
                (tot - sum).abs() <= tolerance,
                "cached total {tot} != recomputed {sum} for i{i}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(k: u32) -> InstrId {
        InstrId::new(k)
    }

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn uniform_initialization() {
        let w = PreferenceMap::new(3, 4, 5);
        w.assert_invariants(1e-9);
        assert_eq!(w.get(i(0), c(0), 0), 1.0 / 20.0);
        assert_eq!(w.cluster_weight(i(1), c(2)), 0.25);
        assert_eq!(w.time_weight(i(2), 3), 0.2);
        assert_eq!(w.confidence(i(0)), 1.0);
        assert_eq!(w.preferred_cluster(i(0)), c(0)); // tie → lowest
        assert_eq!(w.preferred_time(i(0)), Cycle::ZERO);
    }

    #[test]
    fn scaling_updates_marginals() {
        let mut w = PreferenceMap::new(1, 2, 2);
        w.scale_cluster(i(0), c(1), 3.0);
        assert!((w.cluster_weight(i(0), c(1)) - 1.5).abs() < 1e-9);
        assert!((w.total(i(0)) - 2.0).abs() < 1e-9);
        assert_eq!(w.preferred_cluster(i(0)), c(1));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(1)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn scale_time_updates_marginals() {
        let mut w = PreferenceMap::new(1, 2, 3);
        w.scale_time(i(0), 2, 4.0);
        assert!((w.time_weight(i(0), 2) - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(w.preferred_time(i(0)), Cycle::new(2));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
    }

    #[test]
    fn window_squash_and_reset() {
        let mut w = PreferenceMap::new(1, 2, 10);
        w.set_window(i(0), 3, 5);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 0), 0.0);
        assert!(w.time_weight(i(0), 4) > 0.0);
        assert_eq!(w.window(i(0)), (3, 5));
        // Squash everything; normalize must resurrect only the window.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 2), 0.0);
        assert!(w.time_weight(i(0), 3) > 0.0);
    }

    #[test]
    fn forbidden_cluster_stays_dead() {
        let mut w = PreferenceMap::new(1, 3, 4);
        w.forbid_cluster(i(0), c(1));
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        assert!(!w.cluster_feasible(i(0), c(1)));
        // Even a full reset keeps it dead.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(2), 0.0);
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        w.assert_invariants(1e-9);
    }

    #[test]
    fn confidence_ratio() {
        let mut w = PreferenceMap::new(1, 2, 1);
        // 0.8 vs 0.2 → confidence 4.
        w.set(i(0), c(0), 0, 0.8);
        w.set(i(0), c(1), 0, 0.2);
        assert!((w.confidence(i(0)) - 4.0).abs() < 1e-9);
        assert_eq!(w.runnerup_cluster(i(0)), Some(c(1)));
        // Zero runner-up → infinite confidence.
        w.set(i(0), c(1), 0, 0.0);
        assert!(w.confidence(i(0)).is_infinite());
    }

    #[test]
    fn single_cluster_confidence_is_infinite() {
        let w = PreferenceMap::new(1, 1, 4);
        assert!(w.confidence(i(0)).is_infinite());
        assert_eq!(w.runnerup_cluster(i(0)), None);
    }

    #[test]
    fn set_cluster_marginal_preserves_time_shape() {
        let mut w = PreferenceMap::new(1, 2, 2);
        // Give cluster 0 a skewed time profile: 0.4 at t0, 0.1 at t1.
        w.set(i(0), c(0), 0, 0.4);
        w.set(i(0), c(0), 1, 0.1);
        w.set(i(0), c(1), 0, 0.25);
        w.set(i(0), c(1), 1, 0.25);
        w.set_cluster_marginal(i(0), &[0.9, 0.1]);
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(0)) - 0.9).abs() < 1e-9);
        // Time shape inside cluster 0 unchanged: 4:1 ratio.
        let r = w.get(i(0), c(0), 0) / w.get(i(0), c(0), 1);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn set_cluster_marginal_revives_cluster_uniformly() {
        let mut w = PreferenceMap::new(1, 2, 4);
        w.set_window(i(0), 1, 2);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        w.set_cluster_marginal(i(0), &[0.5, 0.5]);
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(1)) - 0.5).abs() < 1e-9);
        // Revived uniformly inside the window only.
        assert_eq!(w.get(i(0), c(1), 0), 0.0);
        assert!(w.get(i(0), c(1), 1) > 0.0);
        assert_eq!(w.get(i(0), c(1), 3), 0.0);
    }

    #[test]
    fn set_cluster_marginal_respects_feasibility() {
        let mut w = PreferenceMap::new(1, 3, 2);
        w.forbid_cluster(i(0), c(2));
        w.normalize(i(0));
        w.set_cluster_marginal(i(0), &[0.2, 0.2, 0.6]);
        w.assert_invariants(1e-9);
        assert_eq!(w.cluster_weight(i(0), c(2)), 0.0);
        // Remaining mass split evenly between the feasible clusters.
        assert!((w.cluster_weight(i(0), c(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn add_clamps_at_zero() {
        let mut w = PreferenceMap::new(1, 1, 1);
        w.add(i(0), c(0), 0, -5.0);
        assert_eq!(w.get(i(0), c(0), 0), 0.0);
        w.add(i(0), c(0), 0, 0.25);
        assert_eq!(w.get(i(0), c(0), 0), 0.25);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn bad_window_panics() {
        let mut w = PreferenceMap::new(1, 1, 4);
        w.set_window(i(0), 3, 2);
    }

    #[test]
    #[should_panic(expected = "weights are ≥ 0")]
    fn negative_weight_panics() {
        let mut w = PreferenceMap::new(1, 1, 1);
        w.set(i(0), c(0), 0, -0.1);
    }

    #[test]
    fn normalize_all_is_idempotent() {
        let mut w = PreferenceMap::new(3, 2, 4);
        w.scale_cluster(i(1), c(0), 7.0);
        w.normalize_all();
        let snapshot = w.clone();
        w.normalize_all();
        for k in 0..3 {
            for cc in 0..2 {
                for t in 0..4 {
                    let a = snapshot.get(i(k), c(cc), t);
                    let b = w.get(i(k), c(cc), t);
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }
}
