//! Property test for the region-sharding identity guarantee: a
//! connected graph at or under the region-size target (these stay
//! well below the default of 2000 instructions) is never cut, so
//! `--shards N` must produce the bit-identical schedule for every
//! `N`. (Connected graphs *over* the target are recursively cut and
//! governor-checked instead — see `shards_determinism` in the bench
//! crate.) The generator builds random *connected* DAGs (a chain
//! backbone plus random extra forward edges, with a random sprinkle
//! of preplacement on the machine's banks) and drives them through
//! both machine families.

use convergent_core::ConvergentScheduler;
use convergent_ir::{ClusterId, DagBuilder, Instruction, Opcode};
use convergent_machine::Machine;
use proptest::prelude::*;

const CASES: u32 = if cfg!(miri) { 4 } else { 48 };
const MAX_LEN: usize = 40;

/// Builds a connected DAG from fixed-size random material: the first
/// `n` opcodes form a chain backbone, and each `(a, z)` pair (taken
/// modulo `n`) adds a forward edge.
fn build(
    n: usize,
    opcodes: &[u8],
    pins: &[u8],
    extra_edges: &[(usize, usize)],
    n_banks: u16,
) -> convergent_ir::Dag {
    let mut b = DagBuilder::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    for k in 0..n {
        let opcode = match opcodes[k] {
            0 => Opcode::Load,
            1 => Opcode::FMul,
            2 => Opcode::Store,
            _ => Opcode::IntAlu,
        };
        let instr = if pins[k] < 15 && matches!(opcode, Opcode::Load | Opcode::Store) {
            Instruction::preplaced(opcode, ClusterId::new(k as u16 % n_banks))
        } else {
            Instruction::new(opcode)
        };
        let id = b.push(instr);
        if k > 0 {
            b.edge(ids[k - 1], id).expect("fresh ids");
        }
        ids.push(id);
    }
    for &(a, z) in extra_edges {
        let (a, z) = (a % n, z % n);
        let (a, z) = (a.min(z), a.max(z));
        if a != z {
            let _ = b.edge_dedup(ids[a], ids[z]);
        }
    }
    b.build().expect("edges point forward")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn sharded_equals_unsharded_on_connected_graphs(
        n in 2usize..MAX_LEN,
        opcodes in proptest::collection::vec(0..4u8, MAX_LEN),
        pins in proptest::collection::vec(0..100u8, MAX_LEN),
        extra_edges in proptest::collection::vec((0usize..MAX_LEN, 0usize..MAX_LEN), 0..MAX_LEN),
    ) {
        for machine in [Machine::raw(4), Machine::chorus_vliw(4)] {
            let dag = build(n, &opcodes, &pins, &extra_edges, machine.n_clusters() as u16);
            prop_assert_eq!(
                convergent_ir::weakly_connected_components(&dag).len(),
                1,
                "generator must produce connected graphs"
            );
            let reference = ConvergentScheduler::vliw_default()
                .schedule(&dag, &machine)
                .unwrap();
            for shards in [1usize, 2, 8] {
                let sharded = ConvergentScheduler::vliw_default()
                    .with_shards(shards)
                    .schedule(&dag, &machine)
                    .unwrap();
                prop_assert_eq!(reference.schedule(), sharded.schedule(),
                    "shards={} on {}", shards, machine.name());
                prop_assert_eq!(reference.assignment(), sharded.assignment());
                prop_assert!(sharded.shard_info().is_none());
            }
        }
    }
}
