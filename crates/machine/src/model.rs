//! The machine model proper.

use std::fmt;

use convergent_ir::{ClusterId, Instruction, OpClass};

use crate::{FuKind, LatencyTable, Topology};

/// One cluster (or Raw tile): a set of functional units that can each
/// issue one operation per cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    fus: Vec<FuKind>,
}

impl Cluster {
    /// Creates a cluster with the given functional units.
    ///
    /// # Panics
    ///
    /// Panics if `fus` is empty — a cluster must issue something.
    #[must_use]
    pub fn new(fus: Vec<FuKind>) -> Self {
        assert!(!fus.is_empty(), "cluster must have at least one FU");
        Cluster { fus }
    }

    /// The Chorus VLIW cluster: int ALU, int ALU/mem, FPU, transfer.
    #[must_use]
    pub fn chorus() -> Self {
        Cluster::new(vec![
            FuKind::IntAlu,
            FuKind::IntAluMem,
            FuKind::Fpu,
            FuKind::Transfer,
        ])
    }

    /// A Raw tile: one single-issue universal pipeline.
    #[must_use]
    pub fn raw_tile() -> Self {
        Cluster::new(vec![FuKind::Universal])
    }

    /// Functional units in issue-slot order.
    #[must_use]
    pub fn fus(&self) -> &[FuKind] {
        &self.fus
    }

    /// Number of issue slots (functional units).
    #[must_use]
    pub fn issue_width(&self) -> usize {
        self.fus.len()
    }

    /// Returns `true` if any unit here can execute `class`.
    #[must_use]
    pub fn can_execute(&self, class: OpClass) -> bool {
        self.fus.iter().any(|fu| fu.can_execute(class))
    }
}

/// Cost model for moving a register value between clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommModel {
    /// Latency between adjacent clusters.
    pub base_latency: u32,
    /// Extra latency per hop beyond the first.
    pub per_hop: u32,
    /// `true` if network ports are register-mapped (Raw): sends and
    /// receives piggyback on producer/consumer instructions instead of
    /// occupying issue slots. `false` means an explicit copy occupies a
    /// transfer unit (clustered VLIW).
    pub register_mapped: bool,
}

impl CommModel {
    /// Raw's static network: 3 cycles to a neighbor, +1 per extra hop,
    /// register-mapped ports.
    #[must_use]
    pub const fn raw_static() -> Self {
        CommModel {
            base_latency: 3,
            per_hop: 1,
            register_mapped: true,
        }
    }

    /// Chorus transfer units: one cycle to any other cluster, occupying
    /// a transfer-unit issue slot.
    #[must_use]
    pub const fn vliw_transfer() -> Self {
        CommModel {
            base_latency: 1,
            per_hop: 0,
            register_mapped: false,
        }
    }

    /// Latency of a transfer crossing `hops` hops (0 hops = same
    /// cluster = free).
    #[must_use]
    pub const fn latency_for_hops(&self, hops: u32) -> u32 {
        if hops == 0 {
            0
        } else {
            self.base_latency + (hops - 1) * self.per_hop
        }
    }
}

/// Memory-system behaviour relevant to scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryModel {
    /// Extra cycles for a memory operation executing on a cluster other
    /// than the bank's home cluster (Chorus: 1). `None` means remote
    /// access is illegal and preplacement is a hard correctness
    /// constraint (Raw).
    pub remote_penalty: Option<u32>,
}

impl MemoryModel {
    /// Raw: banked memory, accesses must run on the home tile.
    #[must_use]
    pub const fn raw() -> Self {
        MemoryModel {
            remote_penalty: None,
        }
    }

    /// Chorus: interleaved memory, remote accesses cost one extra cycle.
    #[must_use]
    pub const fn chorus() -> Self {
        MemoryModel {
            remote_penalty: Some(1),
        }
    }

    /// Returns `true` if memory preplacement is a hard constraint.
    #[must_use]
    pub const fn preplacement_is_hard(&self) -> bool {
        self.remote_penalty.is_none()
    }
}

/// A complete spatial-machine description.
///
/// Use the presets ([`Machine::raw`], [`Machine::chorus_vliw`],
/// [`Machine::single_cluster`]) or assemble a custom machine with
/// [`Machine::new`].
#[derive(Clone, Debug)]
pub struct Machine {
    name: String,
    clusters: Vec<Cluster>,
    topology: Topology,
    comm: CommModel,
    latencies: LatencyTable,
    memory: MemoryModel,
    /// Cluster where all live-in data resides at region entry, if the
    /// architecture has such an invariant (Chorus: cluster 0).
    data_home: Option<ClusterId>,
    /// General-purpose registers available per cluster.
    registers_per_cluster: u32,
}

impl Machine {
    /// Assembles a custom machine.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or its length disagrees with the
    /// topology's capacity.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        clusters: Vec<Cluster>,
        topology: Topology,
        comm: CommModel,
        latencies: LatencyTable,
        memory: MemoryModel,
    ) -> Self {
        assert!(!clusters.is_empty(), "machine must have clusters");
        if let Some(cap) = topology.capacity() {
            assert_eq!(
                clusters.len(),
                cap,
                "topology capacity must match cluster count"
            );
        }
        Machine {
            name: name.into(),
            clusters,
            topology,
            comm,
            latencies,
            memory,
            data_home: None,
            registers_per_cluster: 32,
        }
    }

    /// A Raw machine with `n_tiles` tiles.
    ///
    /// Tile counts map to the mesh shapes of the paper's Table 2:
    /// 1 → 1×1, 2 → 2×1, 4 → 2×2, 8 → 4×2, 16 → 4×4. Other counts use
    /// the most square mesh whose area is `n_tiles`.
    ///
    /// # Panics
    ///
    /// Panics if `n_tiles` is zero.
    #[must_use]
    pub fn raw(n_tiles: u16) -> Self {
        assert!(n_tiles > 0, "raw machine needs at least one tile");
        let (width, height) = squarest_mesh(n_tiles);
        Machine::new(
            format!("raw-{n_tiles}"),
            (0..n_tiles).map(|_| Cluster::raw_tile()).collect(),
            Topology::Mesh { width, height },
            CommModel::raw_static(),
            LatencyTable::r4000(),
            MemoryModel::raw(),
        )
    }

    /// A Chorus-style clustered VLIW with `n_clusters` identical
    /// clusters (the paper evaluates 4).
    ///
    /// # Panics
    ///
    /// Panics if `n_clusters` is zero.
    #[must_use]
    pub fn chorus_vliw(n_clusters: u16) -> Self {
        assert!(n_clusters > 0, "vliw machine needs at least one cluster");
        let mut m = Machine::new(
            format!("chorus-vliw-{n_clusters}"),
            (0..n_clusters).map(|_| Cluster::chorus()).collect(),
            Topology::PointToPoint,
            CommModel::vliw_transfer(),
            LatencyTable::r4000(),
            MemoryModel::chorus(),
        );
        // Chorus invariant: all data are available in the first cluster
        // at the beginning of every scheduling unit (paper, FIRST pass).
        m.data_home = Some(ClusterId::new(0));
        m
    }

    /// A single Chorus cluster — the speedup baseline for Figure 8.
    #[must_use]
    pub fn single_cluster() -> Self {
        Machine::chorus_vliw(1)
    }

    /// Machine name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of clusters.
    #[must_use]
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Iterates over all cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters.len() as u16).map(ClusterId::new)
    }

    /// The cluster description for `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn cluster(&self, c: ClusterId) -> &Cluster {
        &self.clusters[c.index()]
    }

    /// The interconnect topology.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The communication cost model.
    #[must_use]
    pub fn comm(&self) -> CommModel {
        self.comm
    }

    /// The memory model.
    #[must_use]
    pub fn memory(&self) -> MemoryModel {
        self.memory
    }

    /// The latency table.
    #[must_use]
    pub fn latencies(&self) -> &LatencyTable {
        &self.latencies
    }

    /// Replaces the latency table (builder-style).
    #[must_use]
    pub fn with_latencies(mut self, latencies: LatencyTable) -> Self {
        self.latencies = latencies;
        self
    }

    /// Latency in cycles of operation class `class`.
    #[must_use]
    pub fn latency(&self, class: OpClass) -> u32 {
        self.latencies.get(class)
    }

    /// Latency in cycles of a concrete instruction.
    #[must_use]
    pub fn latency_of(&self, instr: &Instruction) -> u32 {
        self.latencies.of(instr)
    }

    /// Cycles for a value produced on `from` to become usable on `to`.
    #[must_use]
    pub fn comm_latency(&self, from: ClusterId, to: ClusterId) -> u32 {
        self.comm.latency_for_hops(self.topology.hops(from, to))
    }

    /// Network hops between two clusters.
    #[must_use]
    pub fn hops(&self, from: ClusterId, to: ClusterId) -> u32 {
        self.topology.hops(from, to)
    }

    /// Returns `true` if cluster `c` can execute `class`.
    #[must_use]
    pub fn cluster_can_execute(&self, c: ClusterId, class: OpClass) -> bool {
        self.clusters[c.index()].can_execute(class)
    }

    /// The cluster holding all live-in data at region entry, if the
    /// architecture defines one (the target of the FIRST pass).
    #[must_use]
    pub fn data_home(&self) -> Option<ClusterId> {
        self.data_home
    }

    /// Sets the data-home cluster (builder-style).
    #[must_use]
    pub fn with_data_home(mut self, home: Option<ClusterId>) -> Self {
        self.data_home = home;
        self
    }

    /// General-purpose registers per cluster (default 32, the MIPS
    /// R4000 integer register file both evaluation platforms build
    /// on).
    #[must_use]
    pub fn registers_per_cluster(&self) -> u32 {
        self.registers_per_cluster
    }

    /// Sets the per-cluster register count (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `registers` is zero.
    #[must_use]
    pub fn with_registers_per_cluster(mut self, registers: u32) -> Self {
        assert!(registers > 0, "clusters need at least one register");
        self.registers_per_cluster = registers;
        self
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} clusters)", self.name, self.n_clusters())
    }
}

/// The most square `width × height` factorization of `n`, widest first,
/// matching Raw's published configurations (2 → 2×1, 8 → 4×2, 16 → 4×4).
fn squarest_mesh(n: u16) -> (u16, u16) {
    let mut best = (n, 1);
    let mut h = 1u16;
    while u32::from(h) * u32::from(h) <= u32::from(n) {
        if n.is_multiple_of(h) {
            best = (n / h, h);
        }
        h += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_mesh_shapes_match_paper() {
        assert_eq!(squarest_mesh(1), (1, 1));
        assert_eq!(squarest_mesh(2), (2, 1));
        assert_eq!(squarest_mesh(4), (2, 2));
        assert_eq!(squarest_mesh(8), (4, 2));
        assert_eq!(squarest_mesh(16), (4, 4));
    }

    #[test]
    fn raw_comm_latency() {
        let m = Machine::raw(16);
        let c = |i| ClusterId::new(i);
        // Same tile: free.
        assert_eq!(m.comm_latency(c(3), c(3)), 0);
        // Neighbors: 3 cycles.
        assert_eq!(m.comm_latency(c(0), c(1)), 3);
        assert_eq!(m.comm_latency(c(0), c(4)), 3);
        // Each extra hop: +1.
        assert_eq!(m.comm_latency(c(0), c(2)), 4);
        assert_eq!(m.comm_latency(c(0), c(15)), 8);
    }

    #[test]
    fn vliw_comm_is_one_cycle() {
        let m = Machine::chorus_vliw(4);
        let c = |i| ClusterId::new(i);
        assert_eq!(m.comm_latency(c(0), c(0)), 0);
        assert_eq!(m.comm_latency(c(0), c(1)), 1);
        assert_eq!(m.comm_latency(c(0), c(3)), 1);
        assert!(!m.comm().register_mapped);
        assert!(m.comm().register_mapped != Machine::raw(4).comm().register_mapped);
    }

    #[test]
    fn chorus_cluster_mix() {
        let m = Machine::chorus_vliw(4);
        let c0 = ClusterId::new(0);
        assert_eq!(m.cluster(c0).issue_width(), 4);
        assert!(m.cluster_can_execute(c0, OpClass::Load));
        assert!(m.cluster_can_execute(c0, OpClass::FMul));
        assert!(m.cluster_can_execute(c0, OpClass::Copy));
        assert_eq!(m.data_home(), Some(c0));
        assert_eq!(m.memory().remote_penalty, Some(1));
        assert!(!m.memory().preplacement_is_hard());
    }

    #[test]
    fn raw_tiles_are_single_issue_universal() {
        let m = Machine::raw(4);
        for c in m.cluster_ids() {
            assert_eq!(m.cluster(c).issue_width(), 1);
            for class in OpClass::ALL {
                assert!(m.cluster_can_execute(c, class));
            }
        }
        assert_eq!(m.data_home(), None);
        assert!(m.memory().preplacement_is_hard());
    }

    #[test]
    fn latency_passthrough() {
        let m = Machine::raw(2);
        assert_eq!(m.latency(OpClass::FMul), 7);
        let m = m.with_latencies(LatencyTable::uniform(1));
        assert_eq!(m.latency(OpClass::FMul), 1);
    }

    #[test]
    fn display_and_name() {
        let m = Machine::chorus_vliw(4);
        assert_eq!(m.name(), "chorus-vliw-4");
        assert!(m.to_string().contains("4 clusters"));
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_rejected() {
        let _ = Machine::raw(0);
    }

    #[test]
    fn register_file_is_configurable() {
        let m = Machine::raw(2);
        assert_eq!(m.registers_per_cluster(), 32);
        let m = m.with_registers_per_cluster(8);
        assert_eq!(m.registers_per_cluster(), 8);
    }

    #[test]
    fn comm_model_latency_for_hops() {
        let raw = CommModel::raw_static();
        assert_eq!(raw.latency_for_hops(0), 0);
        assert_eq!(raw.latency_for_hops(1), 3);
        assert_eq!(raw.latency_for_hops(4), 6);
        let vliw = CommModel::vliw_transfer();
        assert_eq!(vliw.latency_for_hops(1), 1);
        assert_eq!(vliw.latency_for_hops(3), 1);
    }
}
