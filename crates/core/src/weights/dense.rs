//! The dense reference core: one `n_clusters × n_slots` row per
//! instruction, exactly the layout the banded core compresses.
//!
//! This is kept (a) as the differential-testing oracle for the banded
//! core — the two must agree *bit for bit* under identical op
//! sequences — and (b) behind `PreferenceMap::new_dense` /
//! `ConvergentScheduler::with_reference_map` so any schedule can be
//! re-derived on the dense layout end to end.

use std::cell::Cell;

use convergent_ir::{ClusterId, InstrId};

use super::argmax::{self, ArgmaxCache, EPS, NO_CLUSTER};
use super::{SCALE_FOLD_MAX, SCALE_FOLD_MIN};

/// Dense storage with lazy normalization (see the module docs of
/// [`crate::PreferenceMap`]).
#[derive(Clone, Debug)]
pub(crate) struct DenseCore {
    n_instrs: usize,
    n_clusters: usize,
    n_slots: usize,
    /// Raw weights; the visible value is `w[k] * scale[i]`.
    w: Vec<f64>,
    /// Raw marginals, same scaling convention as `w`.
    cluster_sum: Vec<f64>,
    time_sum: Vec<f64>,
    total: Vec<f64>,
    /// Pending per-instruction normalization factor.
    scale: Vec<f64>,
    window: Vec<(u32, u32)>,
    cluster_ok: Vec<bool>,
    argmax: Vec<Cell<ArgmaxCache>>,
}

impl DenseCore {
    pub(crate) fn new(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        assert!(n_instrs > 0, "need at least one instruction");
        assert!(n_clusters > 0, "need at least one cluster");
        assert!(n_slots > 0, "need at least one time slot");
        assert!(n_clusters < NO_CLUSTER as usize, "too many clusters");
        let per = 1.0 / (n_clusters * n_slots) as f64;
        DenseCore {
            n_instrs,
            n_clusters,
            n_slots,
            w: vec![per; n_instrs * n_clusters * n_slots],
            cluster_sum: vec![per * n_slots as f64; n_instrs * n_clusters],
            time_sum: vec![per * n_clusters as f64; n_instrs * n_slots],
            total: vec![1.0; n_instrs],
            scale: vec![1.0; n_instrs],
            window: vec![(0, n_slots as u32 - 1); n_instrs],
            cluster_ok: vec![true; n_instrs * n_clusters],
            argmax: vec![Cell::new(ArgmaxCache::INVALID); n_instrs],
        }
    }

    pub(crate) fn n_instrs(&self) -> usize {
        self.n_instrs
    }

    pub(crate) fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    pub(crate) fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// `(cluster_valid, time_valid)` of `i`'s argmax cache — the
    /// telemetry layer's hit/miss/invalidation probe.
    pub(crate) fn cache_flags(&self, i: InstrId) -> (bool, bool) {
        let c = self.argmax[i.index()].get();
        (c.cluster_valid, c.time_valid)
    }

    #[inline]
    fn idx(&self, i: InstrId, c: ClusterId, t: u32) -> usize {
        debug_assert!(i.index() < self.n_instrs);
        debug_assert!(c.index() < self.n_clusters);
        debug_assert!((t as usize) < self.n_slots);
        (i.index() * self.n_clusters + c.index()) * self.n_slots + t as usize
    }

    pub(crate) fn get(&self, i: InstrId, c: ClusterId, t: u32) -> f64 {
        self.w[self.idx(i, c, t)] * self.scale[i.index()]
    }

    pub(crate) fn set(&mut self, i: InstrId, c: ClusterId, t: u32, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
        let ii = i.index();
        let k = self.idx(i, c, t);
        let raw = value / self.scale[ii];
        let delta = raw - self.w[k];
        if delta == 0.0 {
            return;
        }
        self.w[k] = raw;
        self.cluster_sum[ii * self.n_clusters + c.index()] += delta;
        self.time_sum[ii * self.n_slots + t as usize] += delta;
        self.total[ii] += delta;
        argmax::note_cluster_write(&self.argmax[ii], c.index(), delta > 0.0);
        let base = ii * self.n_slots;
        let sums = &self.time_sum[base..base + self.n_slots];
        argmax::note_time_write(
            &self.argmax[ii],
            t as usize,
            delta > 0.0,
            self.scale[ii],
            |t| sums[t],
        );
    }

    pub(crate) fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        self.rows_view().scale(i, c, t, factor);
    }

    pub(crate) fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        self.rows_view().scale_cluster(i, c, factor);
    }

    pub(crate) fn scale_time(&mut self, i: InstrId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let ii = i.index();
        let old_sum = self.time_sum[ii * self.n_slots + t as usize];
        let mut new_sum = 0.0;
        let mut changed = false;
        for c in 0..self.n_clusters {
            let k = self.idx(i, ClusterId::new(c as u16), t);
            let old = self.w[k];
            let new = old * factor;
            if new != old {
                self.w[k] = new;
                self.cluster_sum[ii * self.n_clusters + c] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        // Exact rebuild of the scaled marginal; see `scale_cluster`.
        self.time_sum[ii * self.n_slots + t as usize] = new_sum;
        self.total[ii] += new_sum - old_sum;
        // Several cluster marginals moved at once; no cheap exact rule.
        argmax::invalidate_cluster(&self.argmax[ii]);
        let base = ii * self.n_slots;
        let sums = &self.time_sum[base..base + self.n_slots];
        argmax::note_time_write(
            &self.argmax[ii],
            t as usize,
            new_sum > old_sum,
            self.scale[ii],
            |t| sums[t],
        );
    }

    pub(crate) fn set_window(&mut self, i: InstrId, lo: u32, hi: u32) {
        assert!(lo <= hi, "window must be non-empty");
        assert!((hi as usize) < self.n_slots, "window exceeds time slots");
        let ii = i.index();
        let (old_lo, old_hi) = self.window[ii];
        let lo = lo.max(old_lo);
        let hi = hi.min(old_hi);
        assert!(lo <= hi, "window must be non-empty");
        self.window[ii] = (lo, hi);
        let mut any_removed = false;
        for t in 0..self.n_slots {
            if (t as u32) >= lo && (t as u32) <= hi {
                continue;
            }
            for c in 0..self.n_clusters {
                let k = (ii * self.n_clusters + c) * self.n_slots + t;
                if self.w[k] != 0.0 {
                    self.w[k] = 0.0;
                    any_removed = true;
                }
            }
            self.time_sum[ii * self.n_slots + t] = 0.0;
        }
        if any_removed {
            // Rebuild the marginals from the surviving cells (in
            // ascending `t` order — the banded core reproduces exactly
            // this summation over its band, where the zeroed cells
            // contribute nothing bit for bit).
            for c in 0..self.n_clusters {
                let base = (ii * self.n_clusters + c) * self.n_slots;
                let mut sum = 0.0;
                for t in 0..self.n_slots {
                    sum += self.w[base + t];
                }
                self.cluster_sum[ii * self.n_clusters + c] = sum;
            }
            self.total[ii] = self.cluster_sum[ii * self.n_clusters..(ii + 1) * self.n_clusters]
                .iter()
                .sum();
            argmax::invalidate_cluster(&self.argmax[ii]);
            let cache = self.argmax[ii].get();
            if cache.time_valid && !(lo..=hi).contains(&cache.top_time) {
                argmax::invalidate_time(&self.argmax[ii]);
            }
        }
    }

    pub(crate) fn window(&self, i: InstrId) -> (u32, u32) {
        self.window[i.index()]
    }

    pub(crate) fn forbid_cluster(&mut self, i: InstrId, c: ClusterId) {
        self.cluster_ok[i.index() * self.n_clusters + c.index()] = false;
        self.scale_cluster(i, c, 0.0);
    }

    pub(crate) fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        self.cluster_ok[i.index() * self.n_clusters + c.index()]
    }

    pub(crate) fn cluster_weight(&self, i: InstrId, c: ClusterId) -> f64 {
        self.cluster_sum[i.index() * self.n_clusters + c.index()] * self.scale[i.index()]
    }

    pub(crate) fn time_weight(&self, i: InstrId, t: u32) -> f64 {
        self.time_sum[i.index() * self.n_slots + t as usize] * self.scale[i.index()]
    }

    pub(crate) fn total(&self, i: InstrId) -> f64 {
        self.total[i.index()] * self.scale[i.index()]
    }

    /// Shannon entropy (nats) of row `i`'s normalized cell
    /// distribution, in one sweep of the raw slice: with `w = raw·s`,
    /// `H = ln T − (s·Σ raw·ln raw + s·ln s·Σ raw) / T`, so the scale
    /// factor multiplies once per row instead of once per cell.
    pub(crate) fn row_entropy(&self, i: InstrId) -> f64 {
        let ii = i.index();
        let s = self.scale[ii];
        let total = self.total[ii] * s;
        if total <= 0.0 {
            return 0.0;
        }
        let base = ii * self.n_clusters * self.n_slots;
        let mut raw_sum = 0.0;
        let mut raw_wlnw = 0.0;
        for &raw in &self.w[base..base + self.n_clusters * self.n_slots] {
            if raw > 0.0 {
                raw_sum += raw;
                raw_wlnw += raw * raw.ln();
            }
        }
        let sum_wlnw = s * raw_wlnw + s * s.ln() * raw_sum;
        (total.ln() - sum_wlnw / total).max(0.0)
    }

    pub(crate) fn cluster_marginals_into(&self, out: &mut [f64]) {
        let nc = self.n_clusters;
        for ((ii, row), &s) in out.chunks_exact_mut(nc).enumerate().zip(&self.scale) {
            let tot = (self.total[ii] * s).max(f64::MIN_POSITIVE);
            for (o, &cs) in row
                .iter_mut()
                .zip(&self.cluster_sum[ii * nc..(ii + 1) * nc])
            {
                *o = cs * s / tot;
            }
        }
    }

    pub(crate) fn feasible_cells_into(&self, idx: &mut Vec<usize>) {
        idx.clear();
        idx.reserve(self.n_instrs + 1);
        idx.push(0);
        let mut cells = 0usize;
        for (r, &(lo, hi)) in self.window.iter().enumerate() {
            let width = (hi - lo + 1) as usize;
            let nc = self.n_clusters;
            let feasible = self.cluster_ok[r * nc..(r + 1) * nc]
                .iter()
                .filter(|&&ok| ok)
                .count();
            cells += feasible * width;
            idx.push(cells);
        }
    }

    /// `(top, second)` cluster from the argmax cache, filling it if
    /// stale.
    pub(crate) fn top2(&self, i: InstrId) -> (u16, u16) {
        let ii = i.index();
        let base = ii * self.n_clusters;
        argmax::cluster_cache(
            &self.argmax[ii],
            &self.cluster_sum[base..base + self.n_clusters],
            self.scale[ii],
        )
    }

    /// Top time slot from the argmax cache, filling it if stale.
    pub(crate) fn top_time(&self, i: InstrId) -> u32 {
        let ii = i.index();
        let cell = &self.argmax[ii];
        let mut cache = cell.get();
        if !cache.time_valid {
            let base = ii * self.n_slots;
            let s = self.scale[ii];
            let mut best = 0usize;
            for t in 1..self.n_slots {
                if self.time_sum[base + t] * s > self.time_sum[base + best] * s + EPS {
                    best = t;
                }
            }
            cache.top_time = best as u32;
            cache.time_valid = true;
            cell.set(cache);
        }
        cache.top_time
    }

    pub(crate) fn normalize(&mut self, i: InstrId) {
        let ii = i.index();
        let tot = self.total[ii] * self.scale[ii];
        if tot > EPS {
            let inv = 1.0 / self.total[ii];
            self.scale[ii] = inv;
            if !(SCALE_FOLD_MIN..=SCALE_FOLD_MAX).contains(&inv) {
                self.materialize(i);
            }
        } else {
            self.reset_uniform(i);
        }
    }

    pub(crate) fn materialize(&mut self, i: InstrId) {
        let ii = i.index();
        let s = self.scale[ii];
        if s == 1.0 {
            return;
        }
        let row = self.n_clusters * self.n_slots;
        for k in ii * row..(ii + 1) * row {
            self.w[k] *= s;
        }
        for c in 0..self.n_clusters {
            self.cluster_sum[ii * self.n_clusters + c] *= s;
        }
        for t in 0..self.n_slots {
            self.time_sum[ii * self.n_slots + t] *= s;
        }
        self.total[ii] *= s;
        self.scale[ii] = 1.0;
        // Visible values are unchanged, so cached argmaxes stay valid.
    }

    pub(crate) fn reset_uniform(&mut self, i: InstrId) {
        let ii = i.index();
        let (lo, hi) = self.window[ii];
        let n_feasible = self.cluster_ok[ii * self.n_clusters..(ii + 1) * self.n_clusters]
            .iter()
            .filter(|&&ok| ok)
            .count();
        // A machine mismatch could leave no feasible cluster; fall back
        // to all clusters rather than a degenerate all-zero row.
        let use_all = n_feasible == 0;
        let n_live = if use_all { self.n_clusters } else { n_feasible };
        let slots = (hi - lo + 1) as usize;
        let per = 1.0 / (n_live * slots) as f64;
        // Clear, then fill.
        let row = self.n_clusters * self.n_slots;
        for k in ii * row..(ii + 1) * row {
            self.w[k] = 0.0;
        }
        for c in 0..self.n_clusters {
            let live = use_all || self.cluster_ok[ii * self.n_clusters + c];
            self.cluster_sum[ii * self.n_clusters + c] =
                if live { per * slots as f64 } else { 0.0 };
            if live {
                let base = (ii * self.n_clusters + c) * self.n_slots;
                for t in lo..=hi {
                    self.w[base + t as usize] = per;
                }
            }
        }
        for t in 0..self.n_slots {
            let inside = (t as u32) >= lo && (t as u32) <= hi;
            self.time_sum[ii * self.n_slots + t] = if inside { per * n_live as f64 } else { 0.0 };
        }
        self.total[ii] = 1.0;
        self.scale[ii] = 1.0;
        self.argmax[ii].set(ArgmaxCache::INVALID);
    }

    /// A mutable row view covering every instruction.
    pub(crate) fn rows_view(&mut self) -> DenseRows<'_> {
        DenseRows {
            start: 0,
            n_clusters: self.n_clusters,
            n_slots: self.n_slots,
            w: &mut self.w,
            cluster_sum: &mut self.cluster_sum,
            time_sum: &mut self.time_sum,
            total: &mut self.total,
            scale: &mut self.scale,
            window: &mut self.window,
            cluster_ok: &mut self.cluster_ok,
            argmax: &mut self.argmax,
        }
    }

    /// Splits the per-instruction arrays into `n_chunks` disjoint
    /// contiguous row views; see `BandedCore::split_rows`.
    pub(crate) fn split_rows(&mut self, n_chunks: usize) -> Vec<DenseRows<'_>> {
        let n = self.n_instrs;
        let chunks = n_chunks.max(1).min(n.max(1));
        let per = n / chunks;
        let extra = n % chunks;
        let mut out = Vec::with_capacity(chunks);
        let mut rest = self.rows_view();
        for k in 0..chunks - 1 {
            let take = per + usize::from(k < extra);
            let (head, tail) = rest.split_at(take);
            out.push(head);
            rest = tail;
        }
        out.push(rest);
        out
    }
}

/// A mutable view over a contiguous range of dense instruction rows;
/// the dense twin of `BandedRows` (same bit-exactness contract, same
/// disjoint-borrow parallelism story). Methods take *absolute*
/// instruction ids and panic on ids outside the range.
pub(crate) struct DenseRows<'a> {
    start: usize,
    n_clusters: usize,
    n_slots: usize,
    w: &'a mut [f64],
    cluster_sum: &'a mut [f64],
    time_sum: &'a mut [f64],
    total: &'a mut [f64],
    scale: &'a mut [f64],
    window: &'a mut [(u32, u32)],
    cluster_ok: &'a mut [bool],
    argmax: &'a mut [Cell<ArgmaxCache>],
}

impl<'a> DenseRows<'a> {
    /// Splits off the first `mid` rows into their own view.
    fn split_at(self, mid: usize) -> (DenseRows<'a>, DenseRows<'a>) {
        let nc = self.n_clusters;
        let ns = self.n_slots;
        let (w_a, w_b) = self.w.split_at_mut(mid * nc * ns);
        let (cs_a, cs_b) = self.cluster_sum.split_at_mut(mid * nc);
        let (ts_a, ts_b) = self.time_sum.split_at_mut(mid * ns);
        let (tot_a, tot_b) = self.total.split_at_mut(mid);
        let (sc_a, sc_b) = self.scale.split_at_mut(mid);
        let (win_a, win_b) = self.window.split_at_mut(mid);
        let (ok_a, ok_b) = self.cluster_ok.split_at_mut(mid * nc);
        let (am_a, am_b) = self.argmax.split_at_mut(mid);
        (
            DenseRows {
                start: self.start,
                n_clusters: nc,
                n_slots: ns,
                w: w_a,
                cluster_sum: cs_a,
                time_sum: ts_a,
                total: tot_a,
                scale: sc_a,
                window: win_a,
                cluster_ok: ok_a,
                argmax: am_a,
            },
            DenseRows {
                start: self.start + mid,
                n_clusters: nc,
                n_slots: ns,
                w: w_b,
                cluster_sum: cs_b,
                time_sum: ts_b,
                total: tot_b,
                scale: sc_b,
                window: win_b,
                cluster_ok: ok_b,
                argmax: am_b,
            },
        )
    }

    #[inline]
    fn rel(&self, i: InstrId) -> usize {
        let r = i
            .index()
            .checked_sub(self.start)
            .expect("instruction below this row view");
        assert!(r < self.total.len(), "instruction above this row view");
        r
    }

    pub(crate) fn start(&self) -> usize {
        self.start
    }

    pub(crate) fn len(&self) -> usize {
        self.total.len()
    }

    pub(crate) fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    pub(crate) fn n_slots(&self) -> usize {
        self.n_slots
    }

    pub(crate) fn window(&self, i: InstrId) -> (u32, u32) {
        self.window[self.rel(i)]
    }

    pub(crate) fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        self.cluster_ok[self.rel(i) * self.n_clusters + c.index()]
    }

    /// `(cluster_valid, time_valid)` of `i`'s argmax cache; see
    /// [`DenseCore::cache_flags`].
    pub(crate) fn cache_flags(&self, i: InstrId) -> (bool, bool) {
        let c = self.argmax[self.rel(i)].get();
        (c.cluster_valid, c.time_valid)
    }

    pub(crate) fn top2(&self, i: InstrId) -> (u16, u16) {
        let r = self.rel(i);
        let base = r * self.n_clusters;
        argmax::cluster_cache(
            &self.argmax[r],
            &self.cluster_sum[base..base + self.n_clusters],
            self.scale[r],
        )
    }

    pub(crate) fn top_time(&self, i: InstrId) -> u32 {
        let r = self.rel(i);
        let cell = &self.argmax[r];
        let mut cache = cell.get();
        if !cache.time_valid {
            let base = r * self.n_slots;
            let s = self.scale[r];
            let mut best = 0usize;
            for t in 1..self.n_slots {
                if self.time_sum[base + t] * s > self.time_sum[base + best] * s + EPS {
                    best = t;
                }
            }
            cache.top_time = best as u32;
            cache.time_valid = true;
            cell.set(cache);
        }
        cache.top_time
    }

    pub(crate) fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let r = self.rel(i);
        let cc = c.index();
        let k = (r * self.n_clusters + cc) * self.n_slots + t as usize;
        let old = self.w[k];
        let new = old * factor;
        let delta = new - old;
        if delta == 0.0 {
            return;
        }
        self.w[k] = new;
        self.cluster_sum[r * self.n_clusters + cc] += delta;
        self.time_sum[r * self.n_slots + t as usize] += delta;
        self.total[r] += delta;
        argmax::note_cluster_write(&self.argmax[r], cc, delta > 0.0);
        let base = r * self.n_slots;
        let sums = &self.time_sum[base..base + self.n_slots];
        argmax::note_time_write(
            &self.argmax[r],
            t as usize,
            delta > 0.0,
            self.scale[r],
            |t| sums[t],
        );
    }

    pub(crate) fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factors are ≥ 0");
        let r = self.rel(i);
        let cc = c.index();
        let base = (r * self.n_clusters + cc) * self.n_slots;
        let old_sum = self.cluster_sum[r * self.n_clusters + cc];
        let mut new_sum = 0.0;
        let mut changed = false;
        for t in 0..self.n_slots {
            let old = self.w[base + t];
            let new = old * factor;
            if new != old {
                self.w[base + t] = new;
                self.time_sum[r * self.n_slots + t] += new - old;
                changed = true;
            }
            new_sum += new;
        }
        if !changed {
            return;
        }
        // Rebuild the scaled marginal and the total from scratch rather
        // than adding a delta: a delta leaves an absolute error behind
        // that sustained shrinking (factor « 1, round after round)
        // amplifies relative to the shrinking true value.
        self.cluster_sum[r * self.n_clusters + cc] = new_sum;
        self.total[r] = self.cluster_sum[r * self.n_clusters..(r + 1) * self.n_clusters]
            .iter()
            .sum();
        argmax::note_cluster_write(&self.argmax[r], cc, new_sum > old_sum);
        // Several time marginals moved at once; no cheap exact rule.
        argmax::invalidate_time(&self.argmax[r]);
    }

    /// Adds `amplitude · draws[k]` to every feasible in-window cell;
    /// the dense twin of `BandedRows::noise_fill` (same visiting order
    /// and arithmetic as the per-cell NOISE loop, one invalidation per
    /// row).
    pub(crate) fn noise_fill(&mut self, i: InstrId, amplitude: f64, draws: &[f64]) {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "amplitude must be ≥ 0"
        );
        let r = self.rel(i);
        let nc = self.n_clusters;
        let ns = self.n_slots;
        let cbase = r * nc;
        let (lo, hi) = self.window[r];
        let width = (hi - lo + 1) as usize;
        let n_feasible = self.cluster_ok[cbase..cbase + nc]
            .iter()
            .filter(|&&ok| ok)
            .count();
        assert_eq!(
            draws.len(),
            n_feasible * width,
            "one draw per feasible cell"
        );
        let s = self.scale[r];
        let trow = &mut self.time_sum[r * ns..(r + 1) * ns];
        let mut tot = self.total[r];
        let mut k = 0usize;
        let mut any = false;
        for c in 0..nc {
            if !self.cluster_ok[cbase + c] {
                continue;
            }
            let wrow = &mut self.w[(r * nc + c) * ns..(r * nc + c + 1) * ns];
            let mut csum = self.cluster_sum[cbase + c];
            for t in lo as usize..=hi as usize {
                let raw_cur = wrow[t];
                let value = (raw_cur * s + amplitude * draws[k]).max(0.0);
                k += 1;
                assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
                let raw = value / s;
                let d = raw - raw_cur;
                if d != 0.0 {
                    wrow[t] = raw;
                    trow[t] += d;
                    csum += d;
                    tot += d;
                    any = true;
                }
            }
            self.cluster_sum[cbase + c] = csum;
        }
        self.total[r] = tot;
        if any {
            // Noise perturbs every feasible cell in both directions
            // across every cluster; neither half of the cache has a
            // cheap keep rule, so invalidate blindly.
            argmax::invalidate_cluster(&self.argmax[r]);
            argmax::invalidate_time(&self.argmax[r]);
        }
    }

    /// `w[i,c,lo+k] += a · xs[k]`, clamped at zero; the dense twin of
    /// `BandedRows::axpy_row`.
    pub(crate) fn axpy_row(&mut self, i: InstrId, c: ClusterId, lo: u32, a: f64, xs: &[f64]) {
        assert!(a.is_finite(), "coefficient must be finite");
        let r = self.rel(i);
        let cc = c.index();
        let nc = self.n_clusters;
        let ns = self.n_slots;
        assert!(lo as usize + xs.len() <= ns, "row write exceeds time slots");
        let s = self.scale[r];
        let wrow = &mut self.w[(r * nc + cc) * ns..(r * nc + cc + 1) * ns];
        let trow = &mut self.time_sum[r * ns..(r + 1) * ns];
        let old_csum = self.cluster_sum[r * nc + cc];
        let mut csum = old_csum;
        let mut tot = self.total[r];
        let mut any = false;
        let pre = self.argmax[r].get();
        let top = pre.top_time as usize;
        let mut time_stale = false;
        for (k, &x) in xs.iter().enumerate() {
            let t = lo as usize + k;
            let raw_cur = wrow[t];
            let value = (raw_cur * s + a * x).max(0.0);
            assert!(value.is_finite() && value >= 0.0, "weights are ≥ 0");
            let raw = value / s;
            let d = raw - raw_cur;
            if d != 0.0 {
                wrow[t] = raw;
                trow[t] += d;
                csum += d;
                tot += d;
                any = true;
                // The cached leader survives slots that only fall
                // while it only rises; anything else needs a rescan.
                time_stale |= if t == top { d < 0.0 } else { d > 0.0 };
            }
        }
        if any {
            self.cluster_sum[r * nc + cc] = csum;
            self.total[r] = tot;
            argmax::note_cluster_write(&self.argmax[r], cc, csum > old_csum);
            if time_stale {
                argmax::invalidate_time(&self.argmax[r]);
            }
        }
    }

    /// `w[i,c,lo+k] *= factors[k]`; the dense twin of
    /// `BandedRows::scale_row`.
    pub(crate) fn scale_row(&mut self, i: InstrId, c: ClusterId, lo: u32, factors: &[f64]) {
        for &f in factors {
            assert!(f.is_finite() && f >= 0.0, "factors are ≥ 0");
        }
        let r = self.rel(i);
        let cc = c.index();
        let nc = self.n_clusters;
        let ns = self.n_slots;
        assert!(
            lo as usize + factors.len() <= ns,
            "row write exceeds time slots"
        );
        let wrow = &mut self.w[(r * nc + cc) * ns..(r * nc + cc + 1) * ns];
        let trow = &mut self.time_sum[r * ns..(r + 1) * ns];
        let old_csum = self.cluster_sum[r * nc + cc];
        let mut csum = old_csum;
        let mut tot = self.total[r];
        let mut any = false;
        let pre = self.argmax[r].get();
        let top = pre.top_time as usize;
        let mut time_stale = false;
        for (k, &f) in factors.iter().enumerate() {
            let t = lo as usize + k;
            let old = wrow[t];
            let new = old * f;
            let d = new - old;
            if d != 0.0 {
                wrow[t] = new;
                trow[t] += d;
                csum += d;
                tot += d;
                any = true;
                // Same keep rule as `axpy_row`: only a falling leader
                // or a rising rival can change the time argmax.
                time_stale |= if t == top { d < 0.0 } else { d > 0.0 };
            }
        }
        if any {
            self.cluster_sum[r * nc + cc] = csum;
            self.total[r] = tot;
            argmax::note_cluster_write(&self.argmax[r], cc, csum > old_csum);
            if time_stale {
                argmax::invalidate_time(&self.argmax[r]);
            }
        }
    }

    /// Applies `scale_cluster(i, c, factors[c])` for every cluster in
    /// one sweep; the dense twin of `BandedRows::scale_clusters_row`
    /// (total re-sum deferred to the end — a pure function of the final
    /// marginals, so the bits match the per-cluster calls).
    pub(crate) fn scale_clusters_row(&mut self, i: InstrId, factors: &[f64]) {
        let nc = self.n_clusters;
        assert_eq!(factors.len(), nc, "one factor per cluster");
        for &f in factors {
            assert!(f.is_finite() && f >= 0.0, "factors are ≥ 0");
        }
        let r = self.rel(i);
        let ns = self.n_slots;
        let cbase = r * nc;
        let trow = &mut self.time_sum[r * ns..(r + 1) * ns];
        let mut row_changed = false;
        for (c, &f) in factors.iter().enumerate() {
            if f == 1.0 {
                // The scan would find every cell unchanged.
                continue;
            }
            if self.cluster_sum[cbase + c] == 0.0 {
                // Dead cluster: every cell is zero (liveness
                // invariant), so the scan would conclude `changed ==
                // false`.
                continue;
            }
            let wrow = &mut self.w[(r * nc + c) * ns..(r * nc + c + 1) * ns];
            let old_sum = self.cluster_sum[cbase + c];
            let mut new_sum = 0.0;
            let mut changed = false;
            for t in 0..ns {
                let old = wrow[t];
                let new = old * f;
                if new != old {
                    wrow[t] = new;
                    trow[t] += new - old;
                    changed = true;
                }
                new_sum += new;
            }
            if changed {
                self.cluster_sum[cbase + c] = new_sum;
                row_changed = true;
                argmax::note_cluster_write(&self.argmax[r], c, new_sum > old_sum);
            }
        }
        if row_changed {
            self.total[r] = self.cluster_sum[cbase..cbase + nc].iter().sum();
            // Time marginals moved in both directions across clusters;
            // no cheap exact rule (same as `scale_cluster`).
            argmax::invalidate_time(&self.argmax[r]);
        }
    }
}
