//! The preference map — the paper's central data structure.
//!
//! Section 3 of the paper: preferences are "a three dimensional matrix
//! `W[i,c,t]`, where `i` spans over all instructions in the scheduling
//! unit, `c` spans over the clusters in the architecture, and `t` spans
//! over time", with "as many time slots as the critical-path length".
//! Two invariants are maintained:
//!
//! ```text
//! ∀ i,t,c : 0 ≤ W[i,t,c] ≤ 1
//! ∀ i     : Σ_{t,c} W[i,t,c] = 1
//! ```
//!
//! Passes talk to each other exclusively by reading and nudging these
//! weights; [`PreferenceMap`] provides the basic operations the paper
//! lists (scaling, normalization, per-dimension combination) plus the
//! derived quantities (`preferred_cluster`, `preferred_time`,
//! `runnerup_cluster`, `confidence`). Marginal sums over time and
//! clusters are maintained incrementally so the derived quantities are
//! cheap, as the paper prescribes.
//!
//! # The banded representation
//!
//! The critical-path length grows with the unit, so a dense
//! `n_clusters × n_slots` row per instruction makes every whole-map
//! operation O(N·C·cp_len) ≈ O(N²·C). But after INITTIME each
//! instruction is confined to its feasible `[lo, hi]` window — a slack
//! band that is typically narrow and independent of the unit size. The
//! default representation therefore stores, per instruction, only the
//! cells of a *band* anchored at that window ([`banded::BandedCore`]):
//!
//! * reads outside the band return exactly `0.0`;
//! * absolute writes outside the band grow it (amortized margin,
//!   clamped to `[0, n_slots)`);
//! * [`PreferenceMap::set_window`] shrinks it;
//! * rows in the uniform state (fresh maps, `reset_uniform`) are kept
//!   in an O(1) closed form until a non-uniform write arrives.
//!
//! Whole-map work (`normalize_all`, `reset_uniform`,
//! `set_cluster_marginal`, marginal maintenance, argmax scans,
//! `materialize`) drops to O(Σᵢ C·bandᵢ). The previous dense layout is
//! retained as [`dense::DenseCore`] behind
//! [`PreferenceMap::new_dense`]; the two representations are kept
//! **bit-for-bit identical** under identical op sequences (the
//! differential proptests assert exact `f64` equality), so the banded
//! map produces byte-identical schedules.
//!
//! # The lazy-scale invariant
//!
//! Normalization runs after *every* pass, so an eager implementation
//! rewrites the entire map O(N·C·T) times per schedule. Both cores
//! instead store, per instruction, *raw* weights plus a scalar
//! `scale[i]`, with the invariant that the externally visible weight is
//! always
//!
//! ```text
//! W[i,c,t] = w_raw[i,c,t] · scale[i]
//! ```
//!
//! (and likewise for the cached marginals and total). Every read
//! multiplies by `scale[i]`; [`PreferenceMap::normalize`] then only has
//! to set `scale[i] = 1 / total_raw[i]` — O(1) — and
//! [`PreferenceMap::normalize_all`] is O(N) in the common
//! all-totals-positive case. Writes compose with the pending scale:
//! multiplicative operations (`scale`, `scale_cluster`, `scale_time`)
//! act on the raw values directly (they commute with the scalar), while
//! absolute writes (`set`, and `add` via `set`) divide the incoming
//! value by `scale[i]`. Raw magnitudes drift as passes multiply weight
//! in and out, so `normalize` folds the scalar back into the stored
//! row ([`PreferenceMap::materialize`]) whenever it leaves
//! `[SCALE_FOLD_MIN, SCALE_FOLD_MAX]`, keeping every quantity
//! comfortably inside `f64` range. `materialize` is also the escape
//! hatch for external readers that want plain eagerly-normalized rows.
//!
//! # Incremental argmax caches
//!
//! The derived argmax quantities (`preferred_cluster`,
//! `runnerup_cluster`, `confidence`, `preferred_time`) are memoized per
//! instruction and invalidated on writes, so the driver's per-pass
//! convergence trace and read-heavy passes (PATHPROP walks, COMM
//! reinforcement) stop paying an O(C) or O(T) scan per call. The
//! invalidation rules are conservative and *exact* with one documented
//! exception: a cached argmax is kept across `normalize`, and because
//! tie-breaking compares against an absolute `EPS`, rescaling can in
//! principle flip a comparison for two entries within `EPS` of each
//! other. Such sub-`EPS` ties are semantically arbitrary (the paper's
//! tie-break is "pick either"), and every cached answer is still the
//! argmax up to `EPS` at the time it was computed.

mod argmax;
mod banded;
mod dense;

use convergent_ir::{ClusterId, Cycle, InstrId};

use argmax::{EPS, NO_CLUSTER};
use banded::{BandedCore, BandedRows};
use dense::{DenseCore, DenseRows};

use crate::telemetry::{CounterTotals, MapCounters, OpKind};

/// Bounds on the pending scale factor; `normalize` folds the factor
/// into the stored row (`materialize`) when it leaves this range so
/// raw magnitudes never approach `f64` overflow/underflow.
pub(crate) const SCALE_FOLD_MIN: f64 = 1e-90;
/// See [`SCALE_FOLD_MIN`].
pub(crate) const SCALE_FOLD_MAX: f64 = 1e90;

/// The two interchangeable storage layouts.
#[derive(Clone, Debug)]
enum Repr {
    Banded(BandedCore),
    Dense(DenseCore),
}

/// One state-changing [`PreferenceMap`] operation, as captured by the
/// recording proxy ([`PreferenceMap::record`]).
///
/// The log contains only *primitive* operations: compound entry points
/// ([`PreferenceMap::add`], [`PreferenceMap::set_cluster_marginal`])
/// decompose into the primitives they perform, so replaying a log with
/// [`WeightOp::apply`] onto an identically constructed map reproduces
/// the original bit for bit. The contract checker in
/// `crate::contract` uses these logs to verify pass behaviour
/// (window-respecting writes, determinism, preplacement monotonicity)
/// without instrumenting the passes themselves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightOp {
    /// `set(i, c, t, value)` — an absolute write.
    Set {
        /// Instruction.
        i: InstrId,
        /// Cluster.
        c: ClusterId,
        /// Time slot.
        t: u32,
        /// The stored value.
        value: f64,
    },
    /// `scale(i, c, t, factor)`.
    Scale {
        /// Instruction.
        i: InstrId,
        /// Cluster.
        c: ClusterId,
        /// Time slot.
        t: u32,
        /// Multiplier.
        factor: f64,
    },
    /// `scale_cluster(i, c, factor)`.
    ScaleCluster {
        /// Instruction.
        i: InstrId,
        /// Cluster.
        c: ClusterId,
        /// Multiplier.
        factor: f64,
    },
    /// `scale_time(i, t, factor)`.
    ScaleTime {
        /// Instruction.
        i: InstrId,
        /// Time slot.
        t: u32,
        /// Multiplier.
        factor: f64,
    },
    /// `set_window(i, lo, hi)` — the *requested* window, before
    /// intersection with any previously recorded window.
    SetWindow {
        /// Instruction.
        i: InstrId,
        /// Requested first feasible slot.
        lo: u32,
        /// Requested last feasible slot.
        hi: u32,
    },
    /// `forbid_cluster(i, c)`.
    ForbidCluster {
        /// Instruction.
        i: InstrId,
        /// The forbidden cluster.
        c: ClusterId,
    },
    /// `normalize(i)`.
    Normalize {
        /// Instruction.
        i: InstrId,
    },
    /// `reset_uniform(i)`.
    ResetUniform {
        /// Instruction.
        i: InstrId,
    },
}

impl WeightOp {
    /// Replays this operation onto `map`.
    pub fn apply(&self, map: &mut PreferenceMap) {
        match *self {
            WeightOp::Set { i, c, t, value } => map.set(i, c, t, value),
            WeightOp::Scale { i, c, t, factor } => map.scale(i, c, t, factor),
            WeightOp::ScaleCluster { i, c, factor } => map.scale_cluster(i, c, factor),
            WeightOp::ScaleTime { i, t, factor } => map.scale_time(i, t, factor),
            WeightOp::SetWindow { i, lo, hi } => map.set_window(i, lo, hi),
            WeightOp::ForbidCluster { i, c } => map.forbid_cluster(i, c),
            WeightOp::Normalize { i } => map.normalize(i),
            WeightOp::ResetUniform { i } => map.reset_uniform(i),
        }
    }

    /// The instruction this operation touches.
    #[must_use]
    pub fn instr(&self) -> InstrId {
        match *self {
            WeightOp::Set { i, .. }
            | WeightOp::Scale { i, .. }
            | WeightOp::ScaleCluster { i, .. }
            | WeightOp::ScaleTime { i, .. }
            | WeightOp::SetWindow { i, .. }
            | WeightOp::ForbidCluster { i, .. }
            | WeightOp::Normalize { i }
            | WeightOp::ResetUniform { i } => i,
        }
    }
}

macro_rules! core {
    ($self:ident, $c:ident => $body:expr) => {
        match &$self.repr {
            Repr::Banded($c) => $body,
            Repr::Dense($c) => $body,
        }
    };
    (mut $self:ident, $c:ident => $body:expr) => {
        match &mut $self.repr {
            Repr::Banded($c) => $body,
            Repr::Dense($c) => $body,
        }
    };
}

/// An `instructions × clusters × time` preference map with banded
/// storage and lazy normalization (see the module docs).
///
/// # Example
///
/// ```
/// use convergent_core::PreferenceMap;
/// use convergent_ir::{ClusterId, InstrId};
///
/// let mut w = PreferenceMap::new(2, 4, 10);
/// let i = InstrId::new(0);
/// // Initially uniform: no preference, confidence 1.
/// assert_eq!(w.confidence(i), 1.0);
/// // Nudge instruction 0 toward cluster 2 and re-normalize.
/// w.scale_cluster(i, ClusterId::new(2), 5.0);
/// w.normalize(i);
/// assert_eq!(w.preferred_cluster(i), ClusterId::new(2));
/// assert!(w.confidence(i) > 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct PreferenceMap {
    repr: Repr,
    /// Reused by `set_cluster_marginal` to avoid per-call allocation.
    scratch: Vec<f64>,
    /// When present, every primitive mutation is appended here (the
    /// recording proxy; see [`PreferenceMap::record`]).
    log: Option<Vec<WeightOp>>,
    /// Telemetry hot-path counters; disabled (one predictable branch
    /// per mutation) until [`PreferenceMap::enable_counters`].
    counters: MapCounters,
}

impl PreferenceMap {
    /// Creates a map with uniform preferences, using the banded
    /// representation.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        PreferenceMap {
            repr: Repr::Banded(BandedCore::new(n_instrs, n_clusters, n_slots)),
            scratch: Vec::new(),
            log: None,
            counters: MapCounters::default(),
        }
    }

    /// Creates a map on the dense reference layout — same semantics,
    /// O(N·C·T) storage. Used by differential tests and
    /// [`with_reference_map`](crate::ConvergentScheduler::with_reference_map).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new_dense(n_instrs: usize, n_clusters: usize, n_slots: usize) -> Self {
        PreferenceMap {
            repr: Repr::Dense(DenseCore::new(n_instrs, n_clusters, n_slots)),
            scratch: Vec::new(),
            log: None,
            counters: MapCounters::default(),
        }
    }

    /// Enables the telemetry hot-path counters (weight ops by kind,
    /// argmax-cache hits/misses/invalidations). Must be called before
    /// any concurrent row access starts; counting itself is safe to
    /// share across [`PreferenceMap::rows_mut`] chunks (relaxed
    /// atomics). Counting never changes weights, so schedules are
    /// bit-identical with counters on or off.
    pub fn enable_counters(&mut self) {
        self.counters.enable();
    }

    /// `true` once [`PreferenceMap::enable_counters`] was called.
    #[must_use]
    pub fn counters_enabled(&self) -> bool {
        self.counters.enabled()
    }

    /// Snapshot of the hot-path counters accumulated so far. Band
    /// growth/densification events (tracked always-on by the banded
    /// core) are merged in; referee/boundary fields stay zero — the
    /// driver and harnesses own those.
    #[must_use]
    pub fn counter_totals(&self) -> CounterTotals {
        let mut t = self.counters.totals();
        if let Repr::Banded(m) = &self.repr {
            let (g, d) = m.band_stats();
            t.band_growths = g;
            t.band_densifications = d;
        }
        t
    }

    /// `(cluster_valid, time_valid)` of `i`'s argmax cache.
    fn cache_flags(&self, i: InstrId) -> (bool, bool) {
        core!(self, m => m.cache_flags(i))
    }

    /// Counts one mutation after the fact: the op itself plus any
    /// argmax cache it knocked out (valid in `pre`, invalid now).
    fn note_op(&self, kind: OpKind, i: InstrId, pre: (bool, bool)) {
        self.counters.op(kind);
        let (nc, nt) = self.cache_flags(i);
        self.counters
            .invalidations(u64::from(pre.0 && !nc) + u64::from(pre.1 && !nt));
    }

    /// `true` when this map runs on the dense reference layout.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Number of instructions.
    #[must_use]
    pub fn n_instrs(&self) -> usize {
        core!(self, c => c.n_instrs())
    }

    /// Number of clusters.
    #[must_use]
    pub fn n_clusters(&self) -> usize {
        core!(self, c => c.n_clusters())
    }

    /// Number of time slots (the critical-path length).
    #[must_use]
    pub fn n_slots(&self) -> usize {
        core!(self, c => c.n_slots())
    }

    /// The `[lo, hi]` extent of `i`'s stored band. On the dense
    /// layout (which stores every slot) this reports the feasible
    /// window for symmetry.
    #[must_use]
    pub fn band(&self, i: InstrId) -> (u32, u32) {
        match &self.repr {
            Repr::Banded(c) => c.band(i),
            Repr::Dense(c) => c.window(i),
        }
    }

    /// Number of raw weight cells currently stored — the banded
    /// layout's compression metric. Dense maps always store
    /// `n_instrs · n_clusters · n_slots`.
    #[must_use]
    pub fn stored_cells(&self) -> usize {
        match &self.repr {
            Repr::Banded(c) => c.stored_cells(),
            Repr::Dense(c) => c.n_instrs() * c.n_clusters() * c.n_slots(),
        }
    }

    /// The weight `W[i, c, t]`.
    #[must_use]
    pub fn get(&self, i: InstrId, c: ClusterId, t: u32) -> f64 {
        core!(self, m => m.get(i, c, t))
    }

    /// Sets `W[i, c, t]`, updating marginals.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn set(&mut self, i: InstrId, c: ClusterId, t: u32, value: f64) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::Set { i, c, t, value });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.set(i, c, t, value));
        if let Some(pre) = pre {
            self.note_op(OpKind::Set, i, pre);
        }
    }

    /// Adds `delta` to `W[i, c, t]`, clamping at zero.
    pub fn add(&mut self, i: InstrId, c: ClusterId, t: u32, delta: f64) {
        let cur = self.get(i, c, t);
        self.set(i, c, t, (cur + delta).max(0.0));
    }

    /// Multiplies `W[i, c, t]` by `factor` (≥ 0).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::Scale { i, c, t, factor });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.scale(i, c, t, factor));
        if let Some(pre) = pre {
            self.note_op(OpKind::Scale, i, pre);
        }
    }

    /// Multiplies every time slot of `(i, c)` by `factor` — O(band)
    /// on the banded layout.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::ScaleCluster { i, c, factor });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.scale_cluster(i, c, factor));
        if let Some(pre) = pre {
            self.note_op(OpKind::ScaleCluster, i, pre);
        }
    }

    /// Multiplies every cluster's weight at time `t` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale_time(&mut self, i: InstrId, t: u32, factor: f64) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::ScaleTime { i, t, factor });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.scale_time(i, t, factor));
        if let Some(pre) = pre {
            self.note_op(OpKind::ScaleTime, i, pre);
        }
    }

    /// Restricts `i` to time slots `[lo, hi]`, zeroing all weight
    /// outside and *intersecting* the recorded window with any window
    /// set earlier — a feasibility constraint, once established, can
    /// only tighten. The banded layout also shrinks `i`'s band to the
    /// new window.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, `hi` is out of range, or the intersection
    /// with the previously recorded window is empty.
    pub fn set_window(&mut self, i: InstrId, lo: u32, hi: u32) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::SetWindow { i, lo, hi });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.set_window(i, lo, hi));
        if let Some(pre) = pre {
            self.note_op(OpKind::SetWindow, i, pre);
        }
    }

    /// The feasible `[lo, hi]` window of `i`.
    #[must_use]
    pub fn window(&self, i: InstrId) -> (u32, u32) {
        core!(self, m => m.window(i))
    }

    /// Marks cluster `c` as unable to execute `i`, zeroing its weight.
    pub fn forbid_cluster(&mut self, i: InstrId, c: ClusterId) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::ForbidCluster { i, c });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.forbid_cluster(i, c));
        if let Some(pre) = pre {
            self.note_op(OpKind::ForbidCluster, i, pre);
        }
    }

    /// Returns `true` if cluster `c` may execute `i`.
    #[must_use]
    pub fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        core!(self, m => m.cluster_feasible(i, c))
    }

    /// The cluster marginal `Σ_t W[i, c, t]`.
    #[must_use]
    pub fn cluster_weight(&self, i: InstrId, c: ClusterId) -> f64 {
        core!(self, m => m.cluster_weight(i, c))
    }

    /// The time marginal `Σ_c W[i, c, t]`.
    #[must_use]
    pub fn time_weight(&self, i: InstrId, t: u32) -> f64 {
        core!(self, m => m.time_weight(i, t))
    }

    /// Total weight of `i` (1 when normalized).
    #[must_use]
    pub fn total(&self, i: InstrId) -> f64 {
        core!(self, m => m.total(i))
    }

    /// Shannon entropy (nats) of the normalized `W[i, ·, ·]`
    /// distribution, computed in one bulk sweep of `i`'s stored cells
    /// (no per-cell layout dispatch) — the telemetry layer's
    /// convergence probe. Uniform rows score `ln(cells)`; a fully
    /// converged row approaches zero.
    #[must_use]
    pub fn row_entropy(&self, i: InstrId) -> f64 {
        core!(self, m => m.row_entropy(i))
    }

    /// Writes every instruction's normalized cluster marginal into
    /// `out` (row-major `n_instrs × n_clusters`) in one streaming
    /// sweep — bit-exact with filling each entry from
    /// `cluster_weight(i, c) / total(i).max(f64::MIN_POSITIVE)`, but
    /// with a single layout dispatch instead of one per cell.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != n_instrs * n_clusters`.
    pub fn cluster_marginals_into(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.n_instrs() * self.n_clusters(),
            "out must hold n_instrs x n_clusters marginals"
        );
        core!(self, m => m.cluster_marginals_into(out))
    }

    /// Fills `idx` with the cumulative feasible-cell layout NOISE
    /// draws against: `n_instrs + 1` entries, `idx[0] == 0`, and
    /// `idx[i + 1] - idx[i]` is instruction `i`'s
    /// `feasible_clusters × window_width` cell count — bit-exact with
    /// counting via per-instruction [`PreferenceMap::window`] /
    /// [`PreferenceMap::cluster_feasible`] calls, in one dispatch.
    pub fn feasible_cells_into(&self, idx: &mut Vec<usize>) {
        core!(self, m => m.feasible_cells_into(idx))
    }

    /// `argmax_c Σ_t W[i, c, t]` — the paper's `preferred_cluster`.
    /// Ties break toward the lowest cluster id.
    #[must_use]
    pub fn preferred_cluster(&self, i: InstrId) -> ClusterId {
        if self.counters.enabled() {
            self.counters.argmax_read(self.cache_flags(i).0);
        }
        ClusterId::new(core!(self, m => m.top2(i)).0)
    }

    /// The second-best cluster, or `None` on single-cluster machines.
    #[must_use]
    pub fn runnerup_cluster(&self, i: InstrId) -> Option<ClusterId> {
        if self.n_clusters() < 2 {
            return None;
        }
        if self.counters.enabled() {
            self.counters.argmax_read(self.cache_flags(i).0);
        }
        let (_, second) = core!(self, m => m.top2(i));
        debug_assert_ne!(second, NO_CLUSTER);
        Some(ClusterId::new(second))
    }

    /// `argmax_t Σ_c W[i, c, t]` — the paper's `preferred_time`.
    /// Ties break toward the earliest slot.
    #[must_use]
    pub fn preferred_time(&self, i: InstrId) -> Cycle {
        if self.counters.enabled() {
            self.counters.argmax_read(self.cache_flags(i).1);
        }
        Cycle::new(core!(self, m => m.top_time(i)))
    }

    /// The paper's confidence: the ratio of the top two cluster
    /// marginals. Returns `f64::INFINITY` when there is no runner-up
    /// or its weight is (numerically) zero.
    #[must_use]
    pub fn confidence(&self, i: InstrId) -> f64 {
        let top = self.cluster_weight(i, self.preferred_cluster(i));
        match self.runnerup_cluster(i) {
            Some(r) => {
                let second = self.cluster_weight(i, r);
                if second <= EPS {
                    f64::INFINITY
                } else {
                    top / second
                }
            }
            None => f64::INFINITY,
        }
    }

    /// Renormalizes `i` so its weights sum to 1 — O(1): only the
    /// pending scale factor changes (see the module docs). If every
    /// weight was squashed to (numerical) zero, the distribution resets
    /// to uniform over the instruction's feasible window and clusters,
    /// so feasibility decisions survive aggressive scaling.
    pub fn normalize(&mut self, i: InstrId) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::Normalize { i });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.normalize(i));
        if let Some(pre) = pre {
            self.note_op(OpKind::Normalize, i, pre);
        }
    }

    /// Folds `i`'s pending scale factor into its stored row, leaving
    /// every visible value unchanged and `scale[i] == 1`. Call this
    /// before handing raw rows to code that bypasses the accessors.
    pub fn materialize(&mut self, i: InstrId) {
        core!(mut self, m => m.materialize(i));
    }

    /// [`PreferenceMap::materialize`] for every instruction — O(Σᵢ
    /// C·bandᵢ) on the banded layout.
    pub fn materialize_all(&mut self) {
        for i in 0..self.n_instrs() {
            self.materialize(InstrId::new(i as u32));
        }
    }

    /// Resets `i` to a uniform distribution over its feasible window
    /// and clusters. On the banded layout this returns the row to its
    /// O(1) closed form.
    pub fn reset_uniform(&mut self, i: InstrId) {
        if let Some(log) = &mut self.log {
            log.push(WeightOp::ResetUniform { i });
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        core!(mut self, m => m.reset_uniform(i));
        if let Some(pre) = pre {
            self.note_op(OpKind::ResetUniform, i, pre);
        }
    }

    /// Renormalizes every instruction — O(N) when every total is
    /// positive, since each `normalize` only updates the scale factor.
    pub fn normalize_all(&mut self) {
        for i in 0..self.n_instrs() {
            self.normalize(InstrId::new(i as u32));
        }
    }

    /// Reshapes `i`'s cluster marginal to `target` (one entry per
    /// cluster; will be normalized internally), preserving each
    /// cluster's time profile. Clusters whose current weight is zero
    /// but whose target is positive receive a uniform time profile
    /// over the feasible window. Infeasible clusters stay at zero.
    ///
    /// This is the paper's "linear combination … only along the space
    /// dimension", used by PATHPROP.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != n_clusters`.
    pub fn set_cluster_marginal(&mut self, i: InstrId, target: &[f64]) {
        let n_clusters = self.n_clusters();
        assert_eq!(target.len(), n_clusters, "one target per cluster");
        let mut masked = std::mem::take(&mut self.scratch);
        masked.clear();
        masked.extend((0..n_clusters).map(|c| {
            if self.cluster_feasible(i, ClusterId::new(c as u16)) {
                target[c].max(0.0)
            } else {
                0.0
            }
        }));
        let sum: f64 = masked.iter().sum();
        if sum <= EPS {
            self.scratch = masked;
            return; // nothing expressible: leave unchanged
        }
        let (lo, hi) = self.window(i);
        let slots = (hi - lo + 1) as f64;
        for c in 0..n_clusters {
            let cid = ClusterId::new(c as u16);
            let want = masked[c] / sum;
            let cur = self.cluster_weight(i, cid);
            if cur > EPS {
                self.scale_cluster(i, cid, want / cur);
            } else if want > EPS {
                for t in lo..=hi {
                    self.set(i, cid, t, want / slots);
                }
            }
        }
        self.normalize(i);
        self.scratch = masked;
    }

    /// Starts (or restarts) the recording proxy: every subsequent
    /// primitive mutation is appended to an internal [`WeightOp`] log
    /// until [`PreferenceMap::take_recording`] is called. Recording
    /// costs one branch per mutation when off and one `Vec` push when
    /// on; reads are never logged.
    pub fn record(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Stops recording and returns the captured log (empty if
    /// [`PreferenceMap::record`] was never called).
    pub fn take_recording(&mut self) -> Vec<WeightOp> {
        self.log.take().unwrap_or_default()
    }

    /// `true` while the recording proxy is active.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.log.is_some()
    }

    /// Checks both paper invariants to `tolerance`, plus the internal
    /// bookkeeping (marginals and total vs. the stored cells),
    /// reporting the first violation instead of panicking — the
    /// contract checker turns the message into a `CS062` diagnostic.
    ///
    /// # Errors
    ///
    /// Returns a description of the first broken invariant.
    pub fn check_invariants(&self, tolerance: f64) -> Result<(), String> {
        for i in 0..self.n_instrs() {
            let id = InstrId::new(i as u32);
            let mut sum = 0.0;
            for c in 0..self.n_clusters() {
                let mut csum = 0.0;
                for t in 0..self.n_slots() {
                    let v = self.get(id, ClusterId::new(c as u16), t as u32);
                    if !(0.0 - tolerance..=1.0 + tolerance).contains(&v) {
                        return Err(format!("W[i{i},c{c},t{t}] = {v} out of [0,1]"));
                    }
                    sum += v;
                    csum += v;
                }
                let cw = self.cluster_weight(id, ClusterId::new(c as u16));
                if (cw - csum).abs() > tolerance {
                    return Err(format!(
                        "cluster marginal {cw} != recomputed {csum} for i{i},c{c}"
                    ));
                }
            }
            for t in 0..self.n_slots() {
                let tsum: f64 = (0..self.n_clusters())
                    .map(|c| self.get(id, ClusterId::new(c as u16), t as u32))
                    .sum();
                let tw = self.time_weight(id, t as u32);
                if (tw - tsum).abs() > tolerance {
                    return Err(format!(
                        "time marginal {tw} != recomputed {tsum} for i{i},t{t}"
                    ));
                }
            }
            if (sum - 1.0).abs() > tolerance {
                return Err(format!("Σ W[i{i}] = {sum}, expected 1"));
            }
            // Marginal bookkeeping must agree with the stored cells.
            let tot = self.total(id);
            if (tot - sum).abs() > tolerance {
                return Err(format!("cached total {tot} != recomputed {sum} for i{i}"));
            }
        }
        Ok(())
    }

    /// Checks both paper invariants to `tolerance`, plus the internal
    /// bookkeeping (marginals and total vs. the stored cells); used by
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics (with context) if an invariant is broken.
    pub fn assert_invariants(&self, tolerance: f64) {
        if let Err(msg) = self.check_invariants(tolerance) {
            panic!("{msg}");
        }
    }

    // ---- bulk row kernels ----
    //
    // Each bulk method is bit-exact with the per-cell decomposition its
    // doc comment names: same visiting order, same arithmetic, one
    // argmax-cache invalidation per row instead of per cell. While the
    // recording proxy is active they *perform* the decomposition, so
    // logs stay replayable from primitive [`WeightOp`]s alone.

    /// Adds `xs[k]` to `W[i, c, lo + k]` for each `k`, clamping at
    /// zero — bit-exact with calling [`PreferenceMap::add`] per cell.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds `n_slots` or a resulting value is
    /// not finite.
    pub fn add_row(&mut self, i: InstrId, c: ClusterId, lo: u32, xs: &[f64]) {
        self.axpy_row(i, c, lo, 1.0, xs);
    }

    /// Adds `a · xs[k]` to `W[i, c, lo + k]` for each `k`, clamping at
    /// zero — bit-exact with the per-cell [`PreferenceMap::add`] loop.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not finite, the span exceeds `n_slots`, or a
    /// resulting value is not finite.
    pub fn axpy_row(&mut self, i: InstrId, c: ClusterId, lo: u32, a: f64, xs: &[f64]) {
        if self.log.is_some() {
            for (k, &x) in xs.iter().enumerate() {
                self.add(i, c, lo + k as u32, a * x);
            }
            return;
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        match &mut self.repr {
            Repr::Banded(m) => m.rows_view().axpy_row(i, c, lo, a, xs),
            Repr::Dense(m) => m.rows_view().axpy_row(i, c, lo, a, xs),
        }
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    /// Multiplies `W[i, c, lo + k]` by `factors[k]` for each `k` —
    /// bit-exact with the per-cell [`PreferenceMap::scale`] loop.
    ///
    /// # Panics
    ///
    /// Panics if a factor is negative or not finite, or the span
    /// exceeds `n_slots`.
    pub fn scale_row(&mut self, i: InstrId, c: ClusterId, lo: u32, factors: &[f64]) {
        if self.log.is_some() {
            for (k, &f) in factors.iter().enumerate() {
                self.scale(i, c, lo + k as u32, f);
            }
            return;
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        match &mut self.repr {
            Repr::Banded(m) => m.rows_view().scale_row(i, c, lo, factors),
            Repr::Dense(m) => m.rows_view().scale_row(i, c, lo, factors),
        }
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    /// Adds `amplitude · draws[k]` to every feasible in-window cell of
    /// `i`, visiting clusters in ascending order and time slots
    /// `lo..=hi` within each cluster — bit-exact with the per-cell
    /// NOISE loop (one `draws` entry per feasible cell, in that
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or not finite, or if
    /// `draws.len()` is not `feasible_clusters · window_width`.
    pub fn noise_fill(&mut self, i: InstrId, amplitude: f64, draws: &[f64]) {
        if self.log.is_some() {
            let (lo, hi) = self.window(i);
            let mut k = 0usize;
            for c in 0..self.n_clusters() {
                let cid = ClusterId::new(c as u16);
                if !self.cluster_feasible(i, cid) {
                    continue;
                }
                for t in lo..=hi {
                    self.add(i, cid, t, amplitude * draws[k]);
                    k += 1;
                }
            }
            assert_eq!(k, draws.len(), "one draw per feasible cell");
            return;
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        match &mut self.repr {
            Repr::Banded(m) => m.rows_view().noise_fill(i, amplitude, draws),
            Repr::Dense(m) => m.rows_view().noise_fill(i, amplitude, draws),
        }
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    /// Applies `scale_cluster(i, c, factors[c])` for every cluster in
    /// one sweep over the row — bit-exact with the per-cluster
    /// [`PreferenceMap::scale_cluster`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != n_clusters` or a factor is negative
    /// or not finite.
    pub fn scale_clusters_row(&mut self, i: InstrId, factors: &[f64]) {
        if self.log.is_some() {
            assert_eq!(factors.len(), self.n_clusters(), "one factor per cluster");
            for (c, &f) in factors.iter().enumerate() {
                self.scale_cluster(i, ClusterId::new(c as u16), f);
            }
            return;
        }
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        match &mut self.repr {
            Repr::Banded(m) => m.rows_view().scale_clusters_row(i, factors),
            Repr::Dense(m) => m.rows_view().scale_clusters_row(i, factors),
        }
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    /// Splits the map into `n_chunks` disjoint contiguous
    /// [`WeightRows`] views (clamped to `[1, n_instrs]`; chunk sizes
    /// differ by at most one row). Each view independently supports
    /// the full [`RowOps`] vocabulary and is `Send`, so sibling views
    /// can be driven from different threads — the storage behind them
    /// is plain disjoint sub-slices, no locks, no `unsafe`. Row
    /// updates touch only that instruction's state, so any
    /// interleaving of per-row operations across views produces the
    /// same bits as the sequential order.
    ///
    /// # Panics
    ///
    /// Panics while the recording proxy is active: views bypass the
    /// [`WeightOp`] log, which would silently break replayability.
    pub fn rows_mut(&mut self, n_chunks: usize) -> Vec<WeightRows<'_>> {
        assert!(
            !self.is_recording(),
            "rows_mut would bypass the recording proxy"
        );
        let counters = &self.counters;
        match &mut self.repr {
            Repr::Banded(m) => m
                .split_rows(n_chunks)
                .into_iter()
                .map(|v| WeightRows {
                    repr: RowsRepr::Banded(v),
                    counters,
                })
                .collect(),
            Repr::Dense(m) => m
                .split_rows(n_chunks)
                .into_iter()
                .map(|v| WeightRows {
                    repr: RowsRepr::Dense(v),
                    counters,
                })
                .collect(),
        }
    }
}

/// Row-granular access shared by [`PreferenceMap`] (the whole map,
/// sequential) and [`WeightRows`] (a disjoint chunk of rows, the unit
/// of intra-pass parallelism). A [`crate::RowKernel`] is written once
/// against this trait and runs identically in both settings.
pub trait RowOps {
    /// The absolute instruction ids this view covers (`0..n_instrs`
    /// for a whole map).
    fn instr_range(&self) -> std::ops::Range<u32>;

    /// Number of clusters.
    fn n_clusters(&self) -> usize;

    /// Number of time slots.
    fn n_slots(&self) -> usize;

    /// The feasible `[lo, hi]` window of `i`.
    fn window(&self, i: InstrId) -> (u32, u32);

    /// Returns `true` if cluster `c` may execute `i`.
    fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool;

    /// `argmax_c Σ_t W[i, c, t]`; see
    /// [`PreferenceMap::preferred_cluster`].
    fn preferred_cluster(&self, i: InstrId) -> ClusterId;

    /// `argmax_t Σ_c W[i, c, t]`; see
    /// [`PreferenceMap::preferred_time`].
    fn preferred_time(&self, i: InstrId) -> Cycle;

    /// Multiplies `W[i, c, t]` by `factor`; see
    /// [`PreferenceMap::scale`].
    fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64);

    /// Multiplies every time slot of `(i, c)` by `factor`; see
    /// [`PreferenceMap::scale_cluster`].
    fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64);

    /// Row-granular clamped add; see [`PreferenceMap::add_row`].
    fn add_row(&mut self, i: InstrId, c: ClusterId, lo: u32, xs: &[f64]);

    /// Row-granular `w += a·x`; see [`PreferenceMap::axpy_row`].
    fn axpy_row(&mut self, i: InstrId, c: ClusterId, lo: u32, a: f64, xs: &[f64]);

    /// Row-granular scale; see [`PreferenceMap::scale_row`].
    fn scale_row(&mut self, i: InstrId, c: ClusterId, lo: u32, factors: &[f64]);

    /// Batched noise fill; see [`PreferenceMap::noise_fill`].
    fn noise_fill(&mut self, i: InstrId, amplitude: f64, draws: &[f64]);

    /// Per-cluster scale sweep; see
    /// [`PreferenceMap::scale_clusters_row`].
    fn scale_clusters_row(&mut self, i: InstrId, factors: &[f64]);

    /// The paper's sharpening step `W[i, tᵢ, cᵢ] ← factor ·
    /// W[i, tᵢ, cᵢ]`: exactly `scale(i, preferred_cluster(i),
    /// preferred_time(i), factor)`, offered as one call so
    /// implementations can resolve the layout dispatch once per row
    /// instead of three times. The default body *is* that
    /// decomposition, so recording implementations log a replayable
    /// primitive [`WeightOp::Scale`].
    fn reinforce_preferred(&mut self, i: InstrId, factor: f64) {
        let c = self.preferred_cluster(i);
        let t = self.preferred_time(i);
        self.scale(i, c, t.get(), factor);
    }

    /// One COMM row visit: [`RowOps::scale_clusters_row`] followed —
    /// when `reinforce` is set — by [`RowOps::reinforce_preferred`],
    /// offered as a single call so implementations can resolve the
    /// layout dispatch once per row instead of twice. The default body
    /// *is* that decomposition, so recording implementations log the
    /// replayable primitives.
    fn comm_row(&mut self, i: InstrId, factors: &[f64], reinforce: Option<f64>) {
        self.scale_clusters_row(i, factors);
        if let Some(f) = reinforce {
            self.reinforce_preferred(i, f);
        }
    }

    /// Applies [`RowOps::noise_fill`] to every row of the view, with
    /// `draws[idx[i]..idx[i + 1]]` as row `i`'s slice (absolute ids
    /// index `idx`). One call per chunk lets implementations resolve
    /// the layout dispatch once instead of once per row. The default
    /// body is the per-row decomposition, so recording implementations
    /// log the replayable primitives.
    fn noise_fill_rows(&mut self, amplitude: f64, draws: &[f64], idx: &[usize]) {
        for i in self.instr_range() {
            let ii = i as usize;
            self.noise_fill(InstrId::new(i), amplitude, &draws[idx[ii]..idx[ii + 1]]);
        }
    }
}

impl RowOps for PreferenceMap {
    fn instr_range(&self) -> std::ops::Range<u32> {
        0..self.n_instrs() as u32
    }

    fn n_clusters(&self) -> usize {
        PreferenceMap::n_clusters(self)
    }

    fn n_slots(&self) -> usize {
        PreferenceMap::n_slots(self)
    }

    fn window(&self, i: InstrId) -> (u32, u32) {
        PreferenceMap::window(self, i)
    }

    fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        PreferenceMap::cluster_feasible(self, i, c)
    }

    fn preferred_cluster(&self, i: InstrId) -> ClusterId {
        PreferenceMap::preferred_cluster(self, i)
    }

    fn preferred_time(&self, i: InstrId) -> Cycle {
        PreferenceMap::preferred_time(self, i)
    }

    fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        PreferenceMap::scale(self, i, c, t, factor);
    }

    fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        PreferenceMap::scale_cluster(self, i, c, factor);
    }

    fn add_row(&mut self, i: InstrId, c: ClusterId, lo: u32, xs: &[f64]) {
        PreferenceMap::add_row(self, i, c, lo, xs);
    }

    fn axpy_row(&mut self, i: InstrId, c: ClusterId, lo: u32, a: f64, xs: &[f64]) {
        PreferenceMap::axpy_row(self, i, c, lo, a, xs);
    }

    fn scale_row(&mut self, i: InstrId, c: ClusterId, lo: u32, factors: &[f64]) {
        PreferenceMap::scale_row(self, i, c, lo, factors);
    }

    fn noise_fill(&mut self, i: InstrId, amplitude: f64, draws: &[f64]) {
        PreferenceMap::noise_fill(self, i, amplitude, draws);
    }

    fn scale_clusters_row(&mut self, i: InstrId, factors: &[f64]) {
        PreferenceMap::scale_clusters_row(self, i, factors);
    }
}

/// The layout-erased row view behind [`PreferenceMap::rows_mut`].
enum RowsRepr<'a> {
    Banded(BandedRows<'a>),
    Dense(DenseRows<'a>),
}

/// A mutable view over a contiguous chunk of instruction rows,
/// produced by [`PreferenceMap::rows_mut`]. Sibling views borrow
/// disjoint storage, are `Send`, and accept only absolute instruction
/// ids inside [`RowOps::instr_range`] (out-of-range ids panic). Argmax
/// caches, marginals, and the lazy scale factor are maintained exactly
/// as on the whole map.
pub struct WeightRows<'a> {
    repr: RowsRepr<'a>,
    /// Shared with the parent map and sibling views — relaxed atomics,
    /// so counting composes across threads without synchronization.
    counters: &'a MapCounters,
}

macro_rules! rows {
    ($self:ident, $v:ident => $body:expr) => {
        match &$self.repr {
            RowsRepr::Banded($v) => $body,
            RowsRepr::Dense($v) => $body,
        }
    };
    (mut $self:ident, $v:ident => $body:expr) => {
        match &mut $self.repr {
            RowsRepr::Banded($v) => $body,
            RowsRepr::Dense($v) => $body,
        }
    };
}

impl WeightRows<'_> {
    /// `(cluster_valid, time_valid)` of `i`'s argmax cache.
    fn cache_flags(&self, i: InstrId) -> (bool, bool) {
        rows!(self, v => v.cache_flags(i))
    }

    /// Counts one mutation after the fact; see
    /// `PreferenceMap::note_op`.
    fn note_op(&self, kind: OpKind, i: InstrId, pre: (bool, bool)) {
        self.counters.op(kind);
        let (nc, nt) = self.cache_flags(i);
        self.counters
            .invalidations(u64::from(pre.0 && !nc) + u64::from(pre.1 && !nt));
    }
}

impl RowOps for WeightRows<'_> {
    fn instr_range(&self) -> std::ops::Range<u32> {
        let (start, len) = rows!(self, v => (v.start(), v.len()));
        start as u32..(start + len) as u32
    }

    fn n_clusters(&self) -> usize {
        rows!(self, v => v.n_clusters())
    }

    fn n_slots(&self) -> usize {
        rows!(self, v => v.n_slots())
    }

    fn window(&self, i: InstrId) -> (u32, u32) {
        rows!(self, v => v.window(i))
    }

    fn cluster_feasible(&self, i: InstrId, c: ClusterId) -> bool {
        rows!(self, v => v.cluster_feasible(i, c))
    }

    fn preferred_cluster(&self, i: InstrId) -> ClusterId {
        if self.counters.enabled() {
            self.counters.argmax_read(self.cache_flags(i).0);
        }
        ClusterId::new(rows!(self, v => v.top2(i)).0)
    }

    fn preferred_time(&self, i: InstrId) -> Cycle {
        if self.counters.enabled() {
            self.counters.argmax_read(self.cache_flags(i).1);
        }
        Cycle::new(rows!(self, v => v.top_time(i)))
    }

    fn scale(&mut self, i: InstrId, c: ClusterId, t: u32, factor: f64) {
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        rows!(mut self, v => v.scale(i, c, t, factor));
        if let Some(pre) = pre {
            self.note_op(OpKind::Scale, i, pre);
        }
    }

    fn scale_cluster(&mut self, i: InstrId, c: ClusterId, factor: f64) {
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        rows!(mut self, v => v.scale_cluster(i, c, factor));
        if let Some(pre) = pre {
            self.note_op(OpKind::ScaleCluster, i, pre);
        }
    }

    fn add_row(&mut self, i: InstrId, c: ClusterId, lo: u32, xs: &[f64]) {
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        rows!(mut self, v => v.axpy_row(i, c, lo, 1.0, xs));
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    fn axpy_row(&mut self, i: InstrId, c: ClusterId, lo: u32, a: f64, xs: &[f64]) {
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        rows!(mut self, v => v.axpy_row(i, c, lo, a, xs));
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    fn scale_row(&mut self, i: InstrId, c: ClusterId, lo: u32, factors: &[f64]) {
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        rows!(mut self, v => v.scale_row(i, c, lo, factors));
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    fn noise_fill(&mut self, i: InstrId, amplitude: f64, draws: &[f64]) {
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        rows!(mut self, v => v.noise_fill(i, amplitude, draws));
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    fn scale_clusters_row(&mut self, i: InstrId, factors: &[f64]) {
        let pre = self.counters.enabled().then(|| self.cache_flags(i));
        rows!(mut self, v => v.scale_clusters_row(i, factors));
        if let Some(pre) = pre {
            self.note_op(OpKind::RowBatch, i, pre);
        }
    }

    fn reinforce_preferred(&mut self, i: InstrId, factor: f64) {
        // With counters on, take the counted decomposition — it is the
        // documented bit-exact equivalent of the fused path below.
        if self.counters.enabled() {
            let c = self.preferred_cluster(i);
            let t = self.preferred_time(i);
            self.scale(i, c, t.get(), factor);
            return;
        }
        rows!(mut self, v => {
            let (top, _) = v.top2(i);
            let t = v.top_time(i);
            v.scale(i, ClusterId::new(top), t, factor);
        });
    }

    fn comm_row(&mut self, i: InstrId, factors: &[f64], reinforce: Option<f64>) {
        if self.counters.enabled() {
            self.scale_clusters_row(i, factors);
            if let Some(f) = reinforce {
                self.reinforce_preferred(i, f);
            }
            return;
        }
        rows!(mut self, v => {
            v.scale_clusters_row(i, factors);
            if let Some(f) = reinforce {
                let (top, _) = v.top2(i);
                let t = v.top_time(i);
                v.scale(i, ClusterId::new(top), t, f);
            }
        });
    }

    fn noise_fill_rows(&mut self, amplitude: f64, draws: &[f64], idx: &[usize]) {
        if self.counters.enabled() {
            for i in self.instr_range() {
                let ii = i as usize;
                self.noise_fill(InstrId::new(i), amplitude, &draws[idx[ii]..idx[ii + 1]]);
            }
            return;
        }
        rows!(mut self, v => {
            for i in v.start()..v.start() + v.len() {
                v.noise_fill(InstrId::new(i as u32), amplitude, &draws[idx[i]..idx[i + 1]]);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(k: u32) -> InstrId {
        InstrId::new(k)
    }

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn uniform_initialization() {
        let w = PreferenceMap::new(3, 4, 5);
        w.assert_invariants(1e-9);
        assert_eq!(w.get(i(0), c(0), 0), 1.0 / 20.0);
        assert_eq!(w.cluster_weight(i(1), c(2)), 0.25);
        assert_eq!(w.time_weight(i(2), 3), 0.2);
        assert_eq!(w.confidence(i(0)), 1.0);
        assert_eq!(w.preferred_cluster(i(0)), c(0)); // tie → lowest
        assert_eq!(w.preferred_time(i(0)), Cycle::ZERO);
    }

    #[test]
    fn scaling_updates_marginals() {
        let mut w = PreferenceMap::new(1, 2, 2);
        w.scale_cluster(i(0), c(1), 3.0);
        assert!((w.cluster_weight(i(0), c(1)) - 1.5).abs() < 1e-9);
        assert!((w.total(i(0)) - 2.0).abs() < 1e-9);
        assert_eq!(w.preferred_cluster(i(0)), c(1));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(1)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn scale_time_updates_marginals() {
        let mut w = PreferenceMap::new(1, 2, 3);
        w.scale_time(i(0), 2, 4.0);
        assert!((w.time_weight(i(0), 2) - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(w.preferred_time(i(0)), Cycle::new(2));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
    }

    #[test]
    fn window_squash_and_reset() {
        let mut w = PreferenceMap::new(1, 2, 10);
        w.set_window(i(0), 3, 5);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 0), 0.0);
        assert!(w.time_weight(i(0), 4) > 0.0);
        assert_eq!(w.window(i(0)), (3, 5));
        // Squash everything; normalize must resurrect only the window.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 2), 0.0);
        assert!(w.time_weight(i(0), 3) > 0.0);
    }

    #[test]
    fn repeated_windows_intersect() {
        let mut w = PreferenceMap::new(1, 2, 10);
        w.set_window(i(0), 2, 7);
        w.set_window(i(0), 4, 9);
        // Recorded window is the intersection, not the last call.
        assert_eq!(w.window(i(0)), (4, 7));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 3), 0.0);
        assert_eq!(w.time_weight(i(0), 8), 0.0);
        assert!(w.time_weight(i(0), 5) > 0.0);
        // A zero-weight reset stays inside the intersection too.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        assert_eq!(w.time_weight(i(0), 2), 0.0);
        assert!(w.time_weight(i(0), 4) > 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn disjoint_window_intersection_panics() {
        let mut w = PreferenceMap::new(1, 1, 10);
        w.set_window(i(0), 0, 2);
        w.set_window(i(0), 5, 7);
    }

    #[test]
    fn forbidden_cluster_stays_dead() {
        let mut w = PreferenceMap::new(1, 3, 4);
        w.forbid_cluster(i(0), c(1));
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        assert!(!w.cluster_feasible(i(0), c(1)));
        // Even a full reset keeps it dead.
        w.scale_cluster(i(0), c(0), 0.0);
        w.scale_cluster(i(0), c(2), 0.0);
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        w.assert_invariants(1e-9);
    }

    #[test]
    fn confidence_ratio() {
        let mut w = PreferenceMap::new(1, 2, 1);
        // 0.8 vs 0.2 → confidence 4.
        w.set(i(0), c(0), 0, 0.8);
        w.set(i(0), c(1), 0, 0.2);
        assert!((w.confidence(i(0)) - 4.0).abs() < 1e-9);
        assert_eq!(w.runnerup_cluster(i(0)), Some(c(1)));
        // Zero runner-up → infinite confidence.
        w.set(i(0), c(1), 0, 0.0);
        assert!(w.confidence(i(0)).is_infinite());
    }

    #[test]
    fn single_cluster_confidence_is_infinite() {
        let w = PreferenceMap::new(1, 1, 4);
        assert!(w.confidence(i(0)).is_infinite());
        assert_eq!(w.runnerup_cluster(i(0)), None);
    }

    #[test]
    fn set_cluster_marginal_preserves_time_shape() {
        let mut w = PreferenceMap::new(1, 2, 2);
        // Give cluster 0 a skewed time profile: 0.4 at t0, 0.1 at t1.
        w.set(i(0), c(0), 0, 0.4);
        w.set(i(0), c(0), 1, 0.1);
        w.set(i(0), c(1), 0, 0.25);
        w.set(i(0), c(1), 1, 0.25);
        w.set_cluster_marginal(i(0), &[0.9, 0.1]);
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(0)) - 0.9).abs() < 1e-9);
        // Time shape inside cluster 0 unchanged: 4:1 ratio.
        let r = w.get(i(0), c(0), 0) / w.get(i(0), c(0), 1);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn set_cluster_marginal_revives_cluster_uniformly() {
        let mut w = PreferenceMap::new(1, 2, 4);
        w.set_window(i(0), 1, 2);
        w.scale_cluster(i(0), c(1), 0.0);
        w.normalize(i(0));
        assert_eq!(w.cluster_weight(i(0), c(1)), 0.0);
        w.set_cluster_marginal(i(0), &[0.5, 0.5]);
        w.assert_invariants(1e-9);
        assert!((w.cluster_weight(i(0), c(1)) - 0.5).abs() < 1e-9);
        // Revived uniformly inside the window only.
        assert_eq!(w.get(i(0), c(1), 0), 0.0);
        assert!(w.get(i(0), c(1), 1) > 0.0);
        assert_eq!(w.get(i(0), c(1), 3), 0.0);
    }

    #[test]
    fn set_cluster_marginal_respects_feasibility() {
        let mut w = PreferenceMap::new(1, 3, 2);
        w.forbid_cluster(i(0), c(2));
        w.normalize(i(0));
        w.set_cluster_marginal(i(0), &[0.2, 0.2, 0.6]);
        w.assert_invariants(1e-9);
        assert_eq!(w.cluster_weight(i(0), c(2)), 0.0);
        // Remaining mass split evenly between the feasible clusters.
        assert!((w.cluster_weight(i(0), c(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn add_clamps_at_zero() {
        let mut w = PreferenceMap::new(1, 1, 1);
        w.add(i(0), c(0), 0, -5.0);
        assert_eq!(w.get(i(0), c(0), 0), 0.0);
        w.add(i(0), c(0), 0, 0.25);
        assert_eq!(w.get(i(0), c(0), 0), 0.25);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn bad_window_panics() {
        let mut w = PreferenceMap::new(1, 1, 4);
        w.set_window(i(0), 3, 2);
    }

    #[test]
    #[should_panic(expected = "weights are ≥ 0")]
    fn negative_weight_panics() {
        let mut w = PreferenceMap::new(1, 1, 1);
        w.set(i(0), c(0), 0, -0.1);
    }

    #[test]
    fn normalize_all_is_idempotent() {
        let mut w = PreferenceMap::new(3, 2, 4);
        w.scale_cluster(i(1), c(0), 7.0);
        w.normalize_all();
        let snapshot = w.clone();
        w.normalize_all();
        for k in 0..3 {
            for cc in 0..2 {
                for t in 0..4 {
                    let a = snapshot.get(i(k), c(cc), t);
                    let b = w.get(i(k), c(cc), t);
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn normalize_is_o1_and_materialize_restores_raw() {
        let mut w = PreferenceMap::new(1, 2, 2);
        w.scale_cluster(i(0), c(1), 9.0);
        w.normalize(i(0));
        // Lazy: the visible values are normalized...
        w.assert_invariants(1e-12);
        let before: Vec<f64> = (0..2u16)
            .flat_map(|cc| (0..2u32).map(move |t| (cc, t)))
            .map(|(cc, t)| w.get(i(0), c(cc), t))
            .collect();
        // ...and materialize folds the factor in without changing them.
        w.materialize(i(0));
        let after: Vec<f64> = (0..2u16)
            .flat_map(|cc| (0..2u32).map(move |t| (cc, t)))
            .map(|(cc, t)| w.get(i(0), c(cc), t))
            .collect();
        assert_eq!(before, after);
        w.assert_invariants(1e-12);
        // After materialize the total is carried eagerly again.
        assert!((w.total(i(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_scaling_stays_finite_across_many_passes() {
        // Repeatedly multiply weight in (as PLACE's ×100 does) with a
        // normalize after every round, far past the point where a
        // naively accumulated raw total would overflow f64: the scale
        // guard must keep folding the factor back in.
        let mut w = PreferenceMap::new(1, 2, 2);
        for _ in 0..300 {
            w.scale_cluster(i(0), c(1), 100.0);
            w.scale_cluster(i(0), c(0), 100.0);
            w.normalize_all();
        }
        w.assert_invariants(1e-9);
        assert!(w.get(i(0), c(1), 0).is_finite());
        // Repeatedly squash a single cluster (forbid-like pressure);
        // normalize keeps redistributing onto the survivor.
        for _ in 0..300 {
            w.scale_cluster(i(0), c(1), 0.01);
            w.normalize_all();
        }
        w.assert_invariants(1e-9);
        assert_eq!(w.preferred_cluster(i(0)), c(0));
    }

    #[test]
    fn sustained_global_shrink_hits_the_fold_guard() {
        // Shrinking *everything* drives the raw total toward f64
        // underflow; the guard folds the scale in whenever it leaves
        // [1e-90, 1e90]. Visible cells, cluster marginals, and the
        // total stay exact because `scale_cluster` rebuilds them from
        // the cells; the time marginals are delta-maintained and may
        // drift under this pathological workload (as in an eager
        // implementation), so they are not checked here.
        let mut w = PreferenceMap::new(1, 2, 2);
        for _ in 0..300 {
            w.scale_cluster(i(0), c(0), 0.01);
            w.scale_cluster(i(0), c(1), 0.01);
            w.normalize_all();
        }
        let mut sum = 0.0;
        for cc in 0..2u16 {
            let mut csum = 0.0;
            for t in 0..2u32 {
                let v = w.get(i(0), c(cc), t);
                assert!(v.is_finite() && v >= 0.0);
                sum += v;
                csum += v;
            }
            assert!((w.cluster_weight(i(0), c(cc)) - csum).abs() < 1e-9);
        }
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((w.total(i(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cached_argmax_tracks_writes() {
        let mut w = PreferenceMap::new(1, 4, 6);
        // Prime the caches.
        assert_eq!(w.preferred_cluster(i(0)), c(0));
        assert_eq!(w.preferred_time(i(0)), Cycle::ZERO);
        // A write that changes the answers must be reflected.
        w.scale_cluster(i(0), c(2), 5.0);
        assert_eq!(w.preferred_cluster(i(0)), c(2));
        w.scale_time(i(0), 4, 5.0);
        assert_eq!(w.preferred_time(i(0)), Cycle::new(4));
        // Boosting the current leaders keeps the cache valid and true.
        w.scale_cluster(i(0), c(2), 2.0);
        w.scale_time(i(0), 4, 2.0);
        assert_eq!(w.preferred_cluster(i(0)), c(2));
        assert_eq!(w.preferred_time(i(0)), Cycle::new(4));
        // Normalization preserves the ordering.
        w.normalize_all();
        assert_eq!(w.preferred_cluster(i(0)), c(2));
        assert_eq!(w.preferred_time(i(0)), Cycle::new(4));
        // Runner-up and confidence come from the same cache.
        assert_ne!(w.runnerup_cluster(i(0)), Some(c(2)));
        assert!(w.confidence(i(0)) > 1.0);
        // A cell-level boost of another column updates the argmax.
        let big = w.total(i(0)) * 3.0;
        w.set(i(0), c(1), 1, big);
        assert_eq!(w.preferred_cluster(i(0)), c(1));
        assert_eq!(w.preferred_time(i(0)), Cycle::new(1));
        w.reset_uniform(i(0));
        assert_eq!(w.preferred_cluster(i(0)), c(0));
        assert_eq!(w.preferred_time(i(0)), Cycle::ZERO);
    }

    // ---- banded-specific behavior ----

    #[test]
    fn dense_reference_layout_is_selectable() {
        let w = PreferenceMap::new(2, 3, 8);
        assert!(!w.is_dense());
        assert_eq!(w.stored_cells(), 2); // two uniform rows
        let d = PreferenceMap::new_dense(2, 3, 8);
        assert!(d.is_dense());
        assert_eq!(d.stored_cells(), 2 * 3 * 8);
    }

    #[test]
    fn band_anchors_at_window_and_shrinks() {
        let mut w = PreferenceMap::new(1, 2, 100);
        w.set_window(i(0), 10, 19);
        // Still uniform: windowing alone allocates nothing.
        assert_eq!(w.stored_cells(), 1);
        assert_eq!(w.band(i(0)), (10, 19));
        // A non-uniform write densifies the band at the window.
        w.scale(i(0), c(0), 12, 3.0);
        assert_eq!(w.band(i(0)), (10, 19));
        assert_eq!(w.stored_cells(), 2 * 10);
        // Window shrink compacts the band.
        w.set_window(i(0), 12, 15);
        assert_eq!(w.band(i(0)), (12, 15));
        assert_eq!(w.stored_cells(), 2 * 4);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        assert_eq!(w.time_weight(i(0), 11), 0.0);
        assert!(w.time_weight(i(0), 12) > 0.0);
    }

    #[test]
    fn out_of_band_write_grows_the_band() {
        let mut w = PreferenceMap::new(1, 2, 100);
        w.set_window(i(0), 40, 44);
        w.scale(i(0), c(0), 41, 2.0); // densify: band = window
        assert_eq!(w.band(i(0)), (40, 44));
        // An absolute write far outside the band re-anchors it (with
        // margin), bounded by [0, n_slots).
        w.set(i(0), c(1), 60, 0.5);
        let (lo, hi) = w.band(i(0));
        assert!(lo <= 40 && hi >= 60, "band {lo}..{hi} must cover the write");
        assert!((hi as usize) < 100);
        assert_eq!(w.get(i(0), c(1), 60), 0.5);
        // Reads beyond the band stay exactly zero.
        assert_eq!(w.get(i(0), c(1), 99), 0.0);
        assert_eq!(w.time_weight(i(0), 99), 0.0);
        w.normalize(i(0));
        w.assert_invariants(1e-9);
        // Growing writes in both directions, clamped at the edges.
        w.set(i(0), c(0), 0, 0.1);
        w.set(i(0), c(0), 99, 0.1);
        assert_eq!(w.band(i(0)), (0, 99));
        w.normalize(i(0));
        w.assert_invariants(1e-9);
    }

    #[test]
    fn reset_uniform_returns_to_closed_form() {
        let mut w = PreferenceMap::new(1, 2, 50);
        w.set_window(i(0), 5, 9);
        w.scale(i(0), c(0), 6, 4.0);
        assert!(w.stored_cells() > 1);
        w.reset_uniform(i(0));
        assert_eq!(w.stored_cells(), 1);
        w.assert_invariants(1e-12);
        assert_eq!(w.get(i(0), c(0), 6), 1.0 / 10.0);
        assert_eq!(w.get(i(0), c(0), 4), 0.0);
    }

    /// A deterministic banded-vs-dense differential covering every op;
    /// the proptest in `tests/row_kernels.rs` drives random
    /// sequences, this one pins the exactness claim in-crate.
    #[test]
    fn banded_matches_dense_bit_for_bit() {
        let mut b = PreferenceMap::new(3, 3, 12);
        let mut d = PreferenceMap::new_dense(3, 3, 12);
        let ops: &[&dyn Fn(&mut PreferenceMap)] = &[
            &|w| w.set_window(i(0), 2, 7),
            &|w| w.scale_cluster(i(0), c(1), 3.5),
            &|w| w.normalize_all(),
            &|w| w.scale_time(i(0), 4, 0.25),
            &|w| w.set(i(0), c(2), 10, 0.75), // out-of-band absolute write
            &|w| w.forbid_cluster(i(1), c(0)),
            &|w| w.set_window(i(0), 3, 5), // shrink past the grown band
            &|w| w.add(i(2), c(1), 11, 0.4),
            &|w| w.set_cluster_marginal(i(2), &[0.1, 0.2, 0.7]),
            &|w| w.scale(i(1), c(2), 0, 9.0),
            &|w| w.normalize_all(),
            &|w| w.materialize_all(),
            &|w| w.scale_cluster(i(0), c(1), 0.0),
            &|w| w.scale_cluster(i(0), c(0), 0.0),
            &|w| w.scale_cluster(i(0), c(2), 0.0),
            &|w| w.normalize_all(), // reset_uniform path
        ];
        for op in ops {
            op(&mut b);
            op(&mut d);
            for k in 0..3u32 {
                let id = i(k);
                assert_eq!(b.window(id), d.window(id));
                assert_eq!(b.total(id).to_bits(), d.total(id).to_bits());
                for cc in 0..3u16 {
                    assert_eq!(
                        b.cluster_weight(id, c(cc)).to_bits(),
                        d.cluster_weight(id, c(cc)).to_bits()
                    );
                    for t in 0..12u32 {
                        assert_eq!(
                            b.get(id, c(cc), t).to_bits(),
                            d.get(id, c(cc), t).to_bits(),
                            "cell ({k},{cc},{t})"
                        );
                    }
                }
                for t in 0..12u32 {
                    assert_eq!(
                        b.time_weight(id, t).to_bits(),
                        d.time_weight(id, t).to_bits(),
                        "time marginal ({k},{t})"
                    );
                }
                assert_eq!(b.preferred_cluster(id), d.preferred_cluster(id));
                assert_eq!(b.runnerup_cluster(id), d.runnerup_cluster(id));
                assert_eq!(b.preferred_time(id), d.preferred_time(id));
                assert_eq!(b.confidence(id).to_bits(), d.confidence(id).to_bits());
            }
        }
    }

    /// Bitwise comparison of two maps across the full observable
    /// surface (windows, cells, marginals, totals, argmaxes).
    fn assert_maps_identical(a: &PreferenceMap, b: &PreferenceMap) {
        assert_eq!(a.n_instrs(), b.n_instrs());
        for k in 0..a.n_instrs() as u32 {
            let id = i(k);
            assert_eq!(a.window(id), b.window(id));
            assert_eq!(a.total(id).to_bits(), b.total(id).to_bits());
            for cc in 0..a.n_clusters() as u16 {
                assert_eq!(a.cluster_feasible(id, c(cc)), b.cluster_feasible(id, c(cc)));
                assert_eq!(
                    a.cluster_weight(id, c(cc)).to_bits(),
                    b.cluster_weight(id, c(cc)).to_bits()
                );
                for t in 0..a.n_slots() as u32 {
                    assert_eq!(
                        a.get(id, c(cc), t).to_bits(),
                        b.get(id, c(cc), t).to_bits(),
                        "cell ({k},{cc},{t})"
                    );
                }
            }
            for t in 0..a.n_slots() as u32 {
                assert_eq!(
                    a.time_weight(id, t).to_bits(),
                    b.time_weight(id, t).to_bits()
                );
            }
            assert_eq!(a.preferred_cluster(id), b.preferred_cluster(id));
            assert_eq!(a.preferred_time(id), b.preferred_time(id));
            assert_eq!(a.confidence(id).to_bits(), b.confidence(id).to_bits());
        }
    }

    /// Deterministic pin of the bulk-kernel exactness claim on both
    /// layouts; `tests/row_kernels.rs` drives randomized sequences.
    #[test]
    fn bulk_row_ops_match_per_cell_bit_for_bit() {
        for dense in [false, true] {
            let fresh = || {
                if dense {
                    PreferenceMap::new_dense(3, 3, 12)
                } else {
                    PreferenceMap::new(3, 3, 12)
                }
            };
            let mut bulk = fresh();
            let mut cell = fresh();
            // Shape some state first: windows, a forbidden cluster, a
            // densified band, a pending scale factor.
            for w in [&mut bulk, &mut cell] {
                w.set_window(i(0), 2, 7);
                w.forbid_cluster(i(1), c(0));
                w.scale(i(2), c(1), 4, 3.0);
                w.normalize_all();
            }
            let xs = [0.3, 0.0, 0.55, 0.2, 0.15];
            bulk.add_row(i(0), c(1), 3, &xs);
            for (k, &x) in xs.iter().enumerate() {
                cell.add(i(0), c(1), 3 + k as u32, x);
            }
            assert_maps_identical(&bulk, &cell);

            bulk.axpy_row(i(2), c(2), 8, -0.5, &xs[..3]);
            for (k, &x) in xs[..3].iter().enumerate() {
                cell.add(i(2), c(2), 8 + k as u32, -0.5 * x);
            }
            assert_maps_identical(&bulk, &cell);

            let fs = [1.0, 0.0, 2.5, 1.0, 0.25];
            bulk.scale_row(i(0), c(1), 3, &fs);
            for (k, &f) in fs.iter().enumerate() {
                cell.scale(i(0), c(1), 3 + k as u32, f);
            }
            assert_maps_identical(&bulk, &cell);

            let cf = [0.05, 1.0, 3.5];
            for k in 0..3u32 {
                bulk.scale_clusters_row(i(k), &cf);
                for (cc, &f) in cf.iter().enumerate() {
                    cell.scale_cluster(i(k), c(cc as u16), f);
                }
            }
            assert_maps_identical(&bulk, &cell);

            // Noise fill over each row's feasible cells.
            for k in 0..3u32 {
                let (lo, hi) = bulk.window(i(k));
                let feas = (0..3u16)
                    .filter(|&cc| bulk.cluster_feasible(i(k), c(cc)))
                    .count();
                let n = feas * (hi - lo + 1) as usize;
                let draws: Vec<f64> = (0..n).map(|d| (d as f64 * 0.37) % 1.0).collect();
                bulk.noise_fill(i(k), 0.8, &draws);
                let mut d = 0usize;
                for cc in 0..3u16 {
                    if !cell.cluster_feasible(i(k), c(cc)) {
                        continue;
                    }
                    for t in lo..=hi {
                        cell.add(i(k), c(cc), t, 0.8 * draws[d]);
                        d += 1;
                    }
                }
            }
            assert_maps_identical(&bulk, &cell);

            // The same bulk ops through disjoint row views give the
            // same bits as through the whole map.
            let mut split = fresh();
            let mut whole = fresh();
            for w in [&mut split, &mut whole] {
                w.set_window(i(0), 2, 7);
                w.normalize_all();
            }
            whole.add_row(i(0), c(0), 2, &xs);
            whole.scale_clusters_row(i(2), &cf);
            {
                let mut views = split.rows_mut(3);
                assert_eq!(views.len(), 3);
                views[0].add_row(i(0), c(0), 2, &xs);
                views[2].scale_clusters_row(i(2), &cf);
            }
            assert_maps_identical(&split, &whole);
        }
    }

    #[test]
    fn row_views_are_send() {
        fn require_send<T: Send>(_: &T) {}
        let mut w = PreferenceMap::new(4, 2, 8);
        let views = w.rows_mut(2);
        assert_eq!(views.len(), 2);
        for v in &views {
            require_send(v);
            assert_eq!(v.n_clusters(), 2);
        }
        assert_eq!(views[0].instr_range(), 0..2);
        assert_eq!(views[1].instr_range(), 2..4);
    }

    #[test]
    #[should_panic(expected = "recording proxy")]
    fn rows_mut_rejects_recording() {
        let mut w = PreferenceMap::new(2, 2, 4);
        w.record();
        let _ = w.rows_mut(2);
    }
}
