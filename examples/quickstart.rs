//! Quickstart: build a small dependence graph, run the convergent
//! scheduler on a 4-cluster VLIW, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use convergent_scheduling::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny kernel: two banked loads feed a multiply whose result is
    // combined with a third value and stored back.
    //
    //   lw a (bank 0)   lw b (bank 1)    lw c (bank 2)
    //        \            /               |
    //         fmul t = a*b                |
    //               \                    /
    //                fadd r = t + c
    //                     |
    //                sw r (bank 0)
    let mut b = DagBuilder::new();
    let a = b.preplaced_instr(Opcode::Load, ClusterId::new(0));
    let bb = b.preplaced_instr(Opcode::Load, ClusterId::new(1));
    let c = b.preplaced_instr(Opcode::Load, ClusterId::new(2));
    let t = b.instr(Opcode::FMul);
    let r = b.instr(Opcode::FAdd);
    let st = b.preplaced_instr(Opcode::Store, ClusterId::new(0));
    b.edge(a, t)?;
    b.edge(bb, t)?;
    b.edge(t, r)?;
    b.edge(c, r)?;
    b.edge(r, st)?;
    let dag = b.build()?;

    // The machine: the paper's Chorus-style clustered VLIW.
    let machine = Machine::chorus_vliw(4);

    // Run the paper's Table 1(b) pass sequence.
    let outcome = ConvergentScheduler::vliw_default().schedule(&dag, &machine)?;

    // The schedule is always validated against machine rules.
    validate(&dag, &machine, outcome.schedule())?;

    println!("assignment:");
    for i in dag.ids() {
        println!(
            "  {i}: {:<6} -> {} @ cycle {}",
            dag.instr(i).to_string(),
            outcome.assignment().cluster(i),
            outcome.schedule().op(i).start
        );
    }
    println!(
        "makespan: {} cycles, {} inter-cluster transfers",
        outcome.schedule().makespan(),
        outcome.schedule().comm_count()
    );

    println!("\nper-pass convergence (fraction of preferred clusters changed):");
    for rec in outcome.trace().records() {
        println!("  {:<10} {:>5.1}%", rec.name, rec.changed_fraction * 100.0);
    }
    Ok(())
}
