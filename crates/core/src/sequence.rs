//! Pass sequences, including the paper's Table 1 configurations.

use std::fmt;

use crate::passes::{
    Comm, EmphCp, First, InitTime, LevelDistribute, LoadBalance, Noise, Path, PathProp, Place,
    PlaceProp,
};
use crate::Pass;

/// An ordered composition of passes.
///
/// "There are no restrictions on the order or the number of times
/// each heuristic is applied" — a sequence is simply the list the
/// driver runs, and the same pass type may appear many times.
///
/// # Example
///
/// ```
/// use convergent_core::passes::{Comm, InitTime, LoadBalance};
/// use convergent_core::Sequence;
///
/// let seq = Sequence::new()
///     .with(InitTime::new())
///     .with(Comm::new())
///     .with(LoadBalance::new())
///     .with(Comm::new()); // applying a pass twice is fine
/// assert_eq!(seq.names(), ["INITTIME", "COMM", "LOAD", "COMM"]);
/// ```
#[derive(Default)]
pub struct Sequence {
    passes: Vec<Box<dyn Pass>>,
}

impl Sequence {
    /// Creates an empty sequence.
    #[must_use]
    pub fn new() -> Self {
        Sequence::default()
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn with(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// Number of passes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Returns `true` if the sequence has no passes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The pass names, in order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The passes, in order.
    #[must_use]
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// Table 1(a): the sequence used for the Raw machine.
    ///
    /// INITTIME, PLACEPROP, LOAD, PLACE, PATH, PATHPROP, LEVEL,
    /// PATHPROP, COMM, PATHPROP, EMPHCP.
    #[must_use]
    pub fn raw() -> Self {
        Sequence::new()
            .with(InitTime::new())
            .with(PlaceProp::new())
            .with(LoadBalance::new())
            .with(Place::new())
            .with(Path::new())
            .with(PathProp::new())
            .with(LevelDistribute::new())
            .with(PathProp::new())
            .with(Comm::new())
            .with(PathProp::new())
            .with(EmphCp::new())
    }

    /// Table 1(b): the sequence used for the Chorus clustered VLIW.
    ///
    /// INITTIME, NOISE, FIRST, PATH, COMM, PLACE, PLACEPROP, COMM,
    /// EMPHCP.
    #[must_use]
    pub fn vliw() -> Self {
        Sequence::new()
            .with(InitTime::new())
            .with(Noise::new())
            .with(First::new())
            .with(Path::new())
            .with(Comm::new())
            .with(Place::new())
            .with(PlaceProp::new())
            .with(Comm::new())
            .with(EmphCp::new())
    }

    /// The VLIW sequence re-tuned by trial and error for this
    /// workspace's cost model, exactly as the paper tunes its own
    /// ("the set of heuristics we use, the weights used in the
    /// heuristics, and the order in which the heuristics are run
    /// \[are\] selected by trial-and-error").
    ///
    /// Relative to Table 1(b): the intermediate COMM applications skip
    /// the preferred-slot reinforcement (which hardened premature
    /// majorities in our cost model), and LOAD interleaves with COMM
    /// so communication minimization cannot pile work onto the
    /// data-home cluster unchecked.
    #[must_use]
    pub fn vliw_tuned() -> Self {
        Sequence::new()
            .with(InitTime::new())
            .with(Noise::new())
            .with(First::new())
            .with(Path::new())
            .with(Comm::new().with_reinforcement(false))
            .with(Place::new())
            .with(PlaceProp::new())
            .with(LoadBalance::new())
            .with(Comm::new().with_reinforcement(false))
            .with(LoadBalance::new())
            .with(Comm::new())
            .with(EmphCp::new())
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sequence")
            .field("passes", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_sequence_matches_table_1a() {
        assert_eq!(
            Sequence::raw().names(),
            [
                "INITTIME",
                "PLACEPROP",
                "LOAD",
                "PLACE",
                "PATH",
                "PATHPROP",
                "LEVEL",
                "PATHPROP",
                "COMM",
                "PATHPROP",
                "EMPHCP"
            ]
        );
    }

    #[test]
    fn vliw_sequence_matches_table_1b() {
        assert_eq!(
            Sequence::vliw().names(),
            [
                "INITTIME",
                "NOISE",
                "FIRST",
                "PATH",
                "COMM",
                "PLACE",
                "PLACEPROP",
                "COMM",
                "EMPHCP"
            ]
        );
    }

    #[test]
    fn vliw_tuned_keeps_the_table_roster_plus_load() {
        let names = Sequence::vliw_tuned().names();
        assert_eq!(names.first(), Some(&"INITTIME"));
        assert_eq!(names.last(), Some(&"EMPHCP"));
        // Same heuristic families as Table 1(b), plus LOAD.
        for required in [
            "NOISE",
            "FIRST",
            "PATH",
            "COMM",
            "PLACE",
            "PLACEPROP",
            "LOAD",
        ] {
            assert!(names.contains(&required), "{required} missing: {names:?}");
        }
    }

    #[test]
    fn sequences_are_composable() {
        let mut s = Sequence::new();
        assert!(s.is_empty());
        s.push(InitTime::new());
        s.push(Comm::new());
        assert_eq!(s.len(), 2);
        assert_eq!(
            format!("{s:?}"),
            r#"Sequence { passes: ["INITTIME", "COMM"] }"#
        );
    }
}
