//! Prometheus text-exposition snapshot exporter.
//!
//! [`MetricsRegistry`] is a small in-process metrics store — counters,
//! gauges, and histograms with labels — rendered in the Prometheus
//! text exposition format (version 0.0.4). ROADMAP item 1's `cschedd`
//! daemon can serve [`MetricsRegistry::render`] verbatim from a
//! `/metrics` endpoint; until then the registry backs `--json` run
//! reports and the round-trip tests via [`parse_exposition`].
//!
//! [`PrometheusSink`] adapts the registry to the [`TelemetrySink`]
//! interface: pass spans become per-pass duration histograms, counter
//! deltas become labeled counter families, and convergence metrics
//! become gauges (last pass wins).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::convergence::ConvergenceMetrics;
use super::counters::CounterTotals;
use super::sink::{split_shard_prefix, SinkInterest, SpanKind, TelemetrySink};

/// Default histogram buckets for pass/stage durations (seconds).
pub const DURATION_BUCKETS: [f64; 7] = [1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// The value of one labeled sample.
#[derive(Clone, Debug, PartialEq)]
enum Sample {
    Counter(f64),
    Gauge(f64),
    Histogram {
        /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
        le: Vec<f64>,
        /// Cumulative counts per bucket (same length as `le`).
        cumulative: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

/// One metric family: a help string, a type, and labeled samples.
#[derive(Clone, Debug, PartialEq)]
struct Family {
    help: String,
    kind: &'static str,
    /// Keyed by the rendered label set (`{k="v",...}` or empty).
    samples: BTreeMap<String, Sample>,
}

/// An in-process metrics store rendering Prometheus text exposition.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

/// Renders a label set deterministically (sorted by key).
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::from("{");
    for (k, (name, value)) in sorted.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{name}=\"{}\"", escape_label(value));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// `true` when no metric family holds any sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family(&mut self, name: &str, help: &str, kind: &'static str) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                samples: BTreeMap::new(),
            })
    }

    /// Adds `v` to the counter `name{labels}` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let fam = self.family(name, help, "counter");
        if let Sample::Counter(total) = fam.samples.entry(key).or_insert(Sample::Counter(0.0)) {
            *total += v;
        }
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let fam = self.family(name, help, "gauge");
        fam.samples.insert(key, Sample::Gauge(v));
    }

    /// Observes `v` into the histogram `name{labels}` using
    /// [`DURATION_BUCKETS`].
    pub fn histogram_observe(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.histogram_observe_with(name, help, labels, v, &DURATION_BUCKETS);
    }

    /// Observes `v` into the histogram `name{labels}` with explicit
    /// bucket upper bounds (ascending; `+Inf` is implicit).
    pub fn histogram_observe_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        v: f64,
        buckets: &[f64],
    ) {
        let key = label_key(labels);
        let fam = self.family(name, help, "histogram");
        let sample = fam.samples.entry(key).or_insert_with(|| Sample::Histogram {
            le: buckets.to_vec(),
            cumulative: vec![0; buckets.len()],
            sum: 0.0,
            count: 0,
        });
        if let Sample::Histogram {
            le,
            cumulative,
            sum,
            count,
        } = sample
        {
            for (k, &bound) in le.iter().enumerate() {
                if v <= bound {
                    cumulative[k] += 1;
                }
            }
            *sum += v;
            *count += 1;
        }
    }

    /// Renders the registry in Prometheus text exposition format 0.0.4.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(
                out,
                "# HELP {name} {}",
                fam.help.replace('\\', "\\\\").replace('\n', "\\n")
            );
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
            for (labels, sample) in &fam.samples {
                match sample {
                    Sample::Counter(v) | Sample::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_value(*v));
                    }
                    Sample::Histogram {
                        le,
                        cumulative,
                        sum,
                        count,
                    } => {
                        for (k, bound) in le.iter().enumerate() {
                            let with_le = merge_le(labels, &fmt_value(*bound));
                            let _ = writeln!(out, "{name}_bucket{with_le} {}", cumulative[k]);
                        }
                        let with_le = merge_le(labels, "+Inf");
                        let _ = writeln!(out, "{name}_bucket{with_le} {count}");
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_value(*sum));
                        let _ = writeln!(out, "{name}_count{labels} {count}");
                    }
                }
            }
        }
        out
    }
}

/// Appends `le="bound"` to a rendered label set.
fn merge_le(labels: &str, bound: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{bound}\"}}")
    } else {
        format!("{},le=\"{bound}\"}}", &labels[..labels.len() - 1])
    }
}

/// Parses text previously produced by [`MetricsRegistry::render`] back
/// into a registry — the round-trip check for the exposition writer.
/// Timestamps and unknown comment lines are not supported; `le` bucket
/// lines are folded back into their histogram sample.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<MetricsRegistry, String> {
    let mut reg = MetricsRegistry::new();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .map(|(n, h)| (n, h.to_string()))
                .unwrap_or((rest, String::new()));
            let help = unescape_label(&help);
            reg.families.entry(name.to_string()).or_insert(Family {
                help,
                kind: "untyped",
                samples: BTreeMap::new(),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| at("TYPE without a kind"))?;
            let kind_static: &'static str = match kind {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                _ => "untyped",
            };
            if let Some(fam) = reg.families.get_mut(name) {
                fam.kind = kind_static;
            } else {
                reg.families.insert(
                    name.to_string(),
                    Family {
                        help: String::new(),
                        kind: kind_static,
                        samples: BTreeMap::new(),
                    },
                );
            }
            kinds.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| at("sample without a value"))?;
        let sample_name = &line[..name_end];
        let (labels, value_str) = if line.as_bytes()[name_end] == b'{' {
            let close = line[name_end..]
                .find('}')
                .map(|k| name_end + k)
                .ok_or_else(|| at("unterminated label set"))?;
            (&line[name_end..=close], line[close + 1..].trim())
        } else {
            ("", line[name_end..].trim())
        };
        let value = parse_value(value_str).ok_or_else(|| at("bad sample value"))?;
        // Histogram sub-samples fold back into the base family.
        let (base, part) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = sample_name.strip_suffix(suffix)?;
                (kinds.get(base).map(String::as_str) == Some("histogram"))
                    .then_some((base, *suffix))
            })
            .unwrap_or((sample_name, ""));
        let fam = reg
            .families
            .get_mut(base)
            .ok_or_else(|| at("sample before HELP/TYPE"))?;
        match (fam.kind, part) {
            ("counter", "") => {
                fam.samples
                    .insert(labels.to_string(), Sample::Counter(value));
            }
            ("histogram", suffix) if !suffix.is_empty() => {
                let (plain, le) = strip_le(labels);
                let sample = fam.samples.entry(plain).or_insert(Sample::Histogram {
                    le: Vec::new(),
                    cumulative: Vec::new(),
                    sum: 0.0,
                    count: 0,
                });
                let Sample::Histogram {
                    le: bounds,
                    cumulative,
                    sum,
                    count,
                } = sample
                else {
                    return Err(at("histogram sample clashes with scalar"));
                };
                match suffix {
                    "_bucket" => {
                        let bound = le
                            .and_then(|b| parse_value(&b))
                            .ok_or_else(|| at("_bucket without le"))?;
                        if bound.is_finite() {
                            bounds.push(bound);
                            cumulative.push(value as u64);
                        }
                    }
                    "_sum" => *sum = value,
                    "_count" => *count = value as u64,
                    _ => unreachable!(),
                }
            }
            _ => {
                // Gauges and untyped scalars.
                fam.samples.insert(labels.to_string(), Sample::Gauge(value));
            }
        }
    }
    Ok(reg)
}

/// Splits a rendered label set into (labels without `le`, the `le`
/// value if present).
fn strip_le(labels: &str) -> (String, Option<String>) {
    if labels.is_empty() {
        return (String::new(), None);
    }
    let inner = &labels[1..labels.len() - 1];
    let mut kept: Vec<String> = Vec::new();
    let mut le = None;
    // Labels were rendered by `label_key`, so values contain no raw
    // commas outside escapes is NOT guaranteed — split on `",` + scan.
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = match rest.find('=') {
            Some(k) => k,
            None => break,
        };
        let key = &rest[..eq];
        let after = &rest[eq + 2..]; // skip ="
        let mut end = 0;
        let bytes = after.as_bytes();
        while end < bytes.len() {
            match bytes[end] {
                b'\\' => end += 2,
                b'"' => break,
                _ => end += 1,
            }
        }
        let value = &after[..end.min(after.len())];
        if key == "le" {
            le = Some(unescape_label(value));
        } else {
            kept.push(format!("{key}=\"{value}\""));
        }
        rest = after.get(end + 1..).unwrap_or("");
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    let plain = if kept.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", kept.join(","))
    };
    (plain, le)
}

/// A [`TelemetrySink`] filling a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct PrometheusSink {
    registry: MetricsRegistry,
}

impl PrometheusSink {
    /// A sink over an empty registry.
    #[must_use]
    pub fn new() -> Self {
        PrometheusSink::default()
    }

    /// The registry accumulated so far.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the sink, returning its registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    fn add_counters(&mut self, shard: &str, delta: &CounterTotals) {
        let ops: [(&str, u64); 9] = [
            ("set", delta.set),
            ("scale", delta.scale),
            ("scale_cluster", delta.scale_cluster),
            ("scale_time", delta.scale_time),
            ("set_window", delta.set_window),
            ("forbid_cluster", delta.forbid_cluster),
            ("normalize", delta.normalize),
            ("reset_uniform", delta.reset_uniform),
            ("row_batch", delta.row_batch),
        ];
        for (kind, v) in ops {
            if v > 0 {
                self.registry.counter_add(
                    "csched_weight_ops_total",
                    "Preference-map weight operations by kind.",
                    &[("kind", kind), ("shard", shard)],
                    v as f64,
                );
            }
        }
        let cache: [(&str, u64); 3] = [
            ("hit", delta.argmax_hits),
            ("miss", delta.argmax_misses),
            ("invalidation", delta.argmax_invalidations),
        ];
        for (event, v) in cache {
            if v > 0 {
                self.registry.counter_add(
                    "csched_argmax_cache_total",
                    "Argmax cache reads and invalidations.",
                    &[("event", event), ("shard", shard)],
                    v as f64,
                );
            }
        }
        let band: [(&str, u64); 2] = [
            ("growth", delta.band_growths),
            ("densification", delta.band_densifications),
        ];
        for (event, v) in band {
            if v > 0 {
                self.registry.counter_add(
                    "csched_band_events_total",
                    "Banded-representation band growths and densifications.",
                    &[("event", event), ("shard", shard)],
                    v as f64,
                );
            }
        }
        if delta.boundary_comms > 0 {
            self.registry.counter_add(
                "csched_boundary_comms_total",
                "COMM instructions stitched across shard boundaries.",
                &[],
                delta.boundary_comms as f64,
            );
        }
        let governor: [(&str, u64); 2] = [
            ("accept", delta.governor_accepts),
            ("reject", delta.governor_rejects),
        ];
        for (verdict, v) in governor {
            if v > 0 {
                self.registry.counter_add(
                    "csched_governor_verdicts_total",
                    "Cut-governor verdicts on projected decompositions.",
                    &[("verdict", verdict)],
                    v as f64,
                );
            }
        }
        let referee: [(&str, u64); 4] = [
            ("validate_ok", delta.validate_ok),
            ("validate_fail", delta.validate_fail),
            ("oracle_agree", delta.oracle_agree),
            ("oracle_disagree", delta.oracle_disagree),
        ];
        for (verdict, v) in referee {
            if v > 0 {
                self.registry.counter_add(
                    "csched_referee_verdicts_total",
                    "Schedule validation and oracle comparison verdicts.",
                    &[("verdict", verdict)],
                    v as f64,
                );
            }
        }
        let contracts: [(&str, u64); 2] = [
            ("proven", delta.contracts_proven),
            ("unproven", delta.contracts_unproven),
        ];
        for (status, v) in contracts {
            if v > 0 {
                self.registry.counter_add(
                    "csched_contract_clauses_total",
                    "Pass-contract clauses by static proof status.",
                    &[("status", status)],
                    v as f64,
                );
            }
        }
    }
}

impl TelemetrySink for PrometheusSink {
    fn interest(&self) -> SinkInterest {
        SinkInterest::all()
    }

    fn span(&mut self, path: &str, kind: SpanKind, _start_secs: f64, dur_secs: f64) {
        let (_, name) = split_shard_prefix(path);
        match kind {
            SpanKind::Pass => self.registry.histogram_observe(
                "csched_pass_duration_seconds",
                "Wall-clock duration of one convergent pass.",
                &[("pass", name)],
                dur_secs,
            ),
            SpanKind::Stage => self.registry.histogram_observe(
                "csched_stage_duration_seconds",
                "Wall-clock duration of one driver stage.",
                &[("stage", name)],
                dur_secs,
            ),
            SpanKind::Run => self.registry.histogram_observe(
                "csched_run_duration_seconds",
                "Wall-clock duration of one full scheduling run.",
                &[],
                dur_secs,
            ),
            SpanKind::Shard | SpanKind::Phase => {}
        }
    }

    fn counters(&mut self, path: &str, delta: &CounterTotals) {
        let (shard, _) = split_shard_prefix(path);
        let shard_label = shard.map(|k| k.to_string()).unwrap_or_default();
        self.add_counters(&shard_label, delta);
    }

    fn convergence(&mut self, path: &str, metrics: &ConvergenceMetrics) {
        let (_, name) = split_shard_prefix(path);
        let labels: [(&str, &str); 1] = [("pass", name)];
        self.registry.gauge_set(
            "csched_convergence_mean_confidence",
            "Mean per-instruction preference confidence after the pass.",
            &labels,
            metrics.mean_confidence,
        );
        self.registry.gauge_set(
            "csched_convergence_decision_churn",
            "Fraction of instructions whose preferred cluster changed.",
            &labels,
            metrics.decision_churn,
        );
        self.registry.gauge_set(
            "csched_convergence_preference_entropy",
            "Mean per-instruction preference entropy (nats).",
            &labels,
            metrics.preference_entropy,
        );
        self.registry.gauge_set(
            "csched_convergence_preplacement_coverage",
            "Fraction of preplaced instructions on their home cluster.",
            &labels,
            metrics.preplacement_coverage,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("ops_total", "Ops.", &[("kind", "set")], 42.0);
        reg.counter_add("ops_total", "Ops.", &[("kind", "scale")], 7.0);
        reg.gauge_set("entropy", "Entropy.", &[("pass", "PATH")], 1.25);
        reg.histogram_observe("dur_seconds", "Durations.", &[("pass", "COMM")], 0.003);
        reg.histogram_observe("dur_seconds", "Durations.", &[("pass", "COMM")], 0.25);
        let text = reg.render();
        let back = parse_exposition(&text).expect("parses");
        assert_eq!(back, reg);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_observe("h", "H.", &[], 5e-5);
        reg.histogram_observe("h", "H.", &[], 0.5);
        let text = reg.render();
        assert!(text.contains("h_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("h_bucket{le=\"1\"} 2"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("h_count 2"));
    }

    #[test]
    fn sink_builds_expected_families() {
        let mut sink = PrometheusSink::new();
        sink.span("PATH", SpanKind::Pass, 0.0, 0.002);
        sink.span("shard1/COMM", SpanKind::Pass, 0.0, 0.001);
        sink.counters(
            "PATH",
            &CounterTotals {
                set: 3,
                argmax_hits: 5,
                ..CounterTotals::default()
            },
        );
        sink.convergence(
            "PATH",
            &ConvergenceMetrics {
                mean_confidence: 2.0,
                decision_churn: 0.5,
                preference_entropy: 1.0,
                preplacement_coverage: 1.0,
            },
        );
        let text = sink.registry().render();
        assert!(text.contains("csched_pass_duration_seconds_bucket{pass=\"PATH\""));
        assert!(text.contains("pass=\"COMM\"")); // shard prefix stripped
        assert!(text.contains("csched_weight_ops_total{kind=\"set\",shard=\"\"} 3"));
        assert!(text.contains("csched_argmax_cache_total{event=\"hit\",shard=\"\"} 5"));
        assert!(text.contains("csched_convergence_decision_churn{pass=\"PATH\"} 0.5"));
        parse_exposition(&text).expect("sink output parses");
    }

    #[test]
    fn label_values_escape() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("g", "G.", &[("pass", "a\"b\\c")], 1.0);
        let text = reg.render();
        assert!(text.contains("g{pass=\"a\\\"b\\\\c\"} 1"));
        let back = parse_exposition(&text).expect("parses escapes");
        assert_eq!(back, reg);
    }
}
