//! Regression tests pinning the paper's qualitative results.
//!
//! Everything here is deterministic (fixed seeds), so these are exact
//! regression guards: if a refactor changes who wins, these fail
//! before EXPERIMENTS.md silently goes stale.

use convergent_scheduling::core::ConvergentScheduler;
use convergent_scheduling::ir::ClusterId;
use convergent_scheduling::machine::Machine;
use convergent_scheduling::schedulers::{ListScheduler, RawccScheduler, Scheduler};
use convergent_scheduling::sim::{evaluate, validate, Assignment};
use convergent_scheduling::workloads::{raw_suite, rebank};

fn executed(
    scheduler: &dyn Scheduler,
    unit: &convergent_scheduling::ir::SchedulingUnit,
    machine: &Machine,
) -> f64 {
    let s = scheduler.schedule(unit.dag(), machine).expect("schedules");
    validate(unit.dag(), machine, &s).expect("valid");
    f64::from(
        evaluate(unit.dag(), machine, &s)
            .expect("executes")
            .makespan
            .get(),
    )
}

fn baseline(unit: &convergent_scheduling::ir::SchedulingUnit) -> f64 {
    let folded = rebank(unit, 1);
    let single = Machine::raw(1);
    let asg = Assignment::uniform(folded.dag().len(), ClusterId::new(0));
    let s = ListScheduler::new()
        .schedule_with_cp(folded.dag(), &single, &asg)
        .expect("schedules");
    f64::from(
        evaluate(folded.dag(), &single, &s)
            .expect("executes")
            .makespan
            .get(),
    )
}

/// The paper's headline: on preplacement-rich dense benchmarks,
/// convergent scheduling beats the Rawcc baseline at 8 tiles.
#[test]
fn convergent_beats_rawcc_on_dense_benchmarks_at_8_tiles() {
    let machine = Machine::raw(8);
    let dense = ["mxm", "swim", "jacobi", "cholesky", "tomcatv"];
    let mut conv_wins = 0usize;
    let mut log_ratio = 0.0f64;
    for unit in raw_suite(8) {
        if !dense.contains(&unit.name()) {
            continue;
        }
        let base = executed(&RawccScheduler::new(), &unit, &machine);
        let conv = executed(&ConvergentScheduler::raw_default(), &unit, &machine);
        // Lower cycles = better; speedup ratio = base / conv.
        log_ratio += (base / conv).ln();
        if conv <= base {
            conv_wins += 1;
        }
    }
    assert!(
        conv_wins >= 4,
        "convergent must win at least 4 of 5 dense benchmarks, won {conv_wins}"
    );
    assert!(
        log_ratio > 0.0,
        "geomean cycle ratio must favor convergent (got {:.3})",
        log_ratio.exp()
    );
}

/// The paper's admitted weakness: convergent trails the baseline on
/// fpppp-kernel, the fine-grained-ILP graph with no preplacement.
#[test]
fn fpppp_is_convergents_worst_case() {
    let machine = Machine::raw(8);
    let unit = raw_suite(8)
        .into_iter()
        .find(|u| u.name() == "fpppp-kernel")
        .expect("suite roster");
    let base = executed(&RawccScheduler::new(), &unit, &machine);
    let conv = executed(&ConvergentScheduler::raw_default(), &unit, &machine);
    assert!(
        conv >= base,
        "paper shape: baseline Rawcc should win fpppp-kernel (base {base}, conv {conv})"
    );
}

/// Speedups must scale with tile count on the fat benchmarks (the
/// paper's Table 2 trend).
#[test]
fn fat_benchmarks_scale_with_tiles() {
    for name in ["vpenta", "life"] {
        let mut prev = 0.0f64;
        for tiles in [2u16, 4, 8] {
            let machine = Machine::raw(tiles);
            let unit = raw_suite(tiles)
                .into_iter()
                .find(|u| u.name() == name)
                .expect("suite roster");
            let speedup =
                baseline(&unit) / executed(&ConvergentScheduler::raw_default(), &unit, &machine);
            assert!(
                speedup > prev * 1.05,
                "{name}: speedup {speedup:.2} at {tiles} tiles did not grow past {prev:.2}"
            );
            prev = speedup;
        }
    }
}
