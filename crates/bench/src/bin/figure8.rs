//! Figure 8: PCC vs UAS vs convergent scheduling on a four-cluster
//! VLIW. Speedup is relative to a single-cluster machine.
//!
//! The convergent scheduler uses the sequence re-tuned for this
//! workspace's cost model (`Sequence::vliw_tuned`); pass `--table1b`
//! to run the paper's verbatim Table 1(b) sequence instead.
//!
//! ```text
//! cargo run --release -p convergent-bench --bin figure8
//! cargo run --release -p convergent-bench --bin figure8 -- --jobs 4
//! ```

use convergent_bench::parallel::{default_jobs, jobs_from_args, run_cells};
use convergent_bench::{geomean, print_row, speedup};
use convergent_core::ConvergentScheduler;
use convergent_machine::Machine;
use convergent_schedulers::{PccScheduler, UasScheduler};
use convergent_workloads::vliw_suite;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let jobs = jobs_from_args(&mut args, default_jobs());
    let table1b = args.iter().any(|a| a == "--table1b");
    let machine = Machine::chorus_vliw(4);
    let suite = vliw_suite(4);
    print_row("benchmark", &["pcc", "uas", "convergent"].map(String::from));
    // One cell per unit; every cell builds its own schedulers so the
    // fan-out stays deterministic (see bench::parallel).
    let results: Vec<(f64, f64, f64)> = run_cells(&suite, jobs, |unit| {
        let pcc = speedup(&PccScheduler::new(), unit, &machine)
            .unwrap_or_else(|e| panic!("pcc on {}: {e}", unit.name()));
        let uas = speedup(&UasScheduler::new(), unit, &machine)
            .unwrap_or_else(|e| panic!("uas on {}: {e}", unit.name()));
        let conv_sched = if table1b {
            ConvergentScheduler::vliw_default()
        } else {
            ConvergentScheduler::vliw_tuned()
        };
        let conv = speedup(&conv_sched, unit, &machine)
            .unwrap_or_else(|e| panic!("convergent on {}: {e}", unit.name()));
        (pcc, uas, conv)
    });
    let mut pcc_all = Vec::new();
    let mut uas_all = Vec::new();
    let mut conv_all = Vec::new();
    for (unit, &(pcc, uas, conv)) in suite.iter().zip(&results) {
        pcc_all.push(pcc);
        uas_all.push(uas);
        conv_all.push(conv);
        print_row(
            unit.name(),
            &[
                format!("{pcc:.2}"),
                format!("{uas:.2}"),
                format!("{conv:.2}"),
            ],
        );
    }
    println!();
    print_row(
        "geomean",
        &[
            format!("{:.2}", geomean(&pcc_all)),
            format!("{:.2}", geomean(&uas_all)),
            format!("{:.2}", geomean(&conv_all)),
        ],
    );
    println!();
    println!(
        "convergent vs UAS: {:+.1}%  (paper: +14%)",
        (geomean(&conv_all) / geomean(&uas_all) - 1.0) * 100.0
    );
    println!(
        "convergent vs PCC: {:+.1}%  (paper: +28%)",
        (geomean(&conv_all) / geomean(&pcc_all) - 1.0) * 100.0
    );
}
