//! Dense-matrix and streaming kernels: mxm, vvmul, fir, yuv.
//!
//! These are the "fat, parallel graphs" of the paper's Figure 2(b):
//! unrolled numeric loops with coarse-grained parallelism, many
//! preplaced memory operations from congruence analysis, and good
//! natural partitions — the workloads on which preplacement-guided
//! scheduling shines.

use convergent_ir::{Opcode, SchedulingUnit};

use crate::kernel::Kb;

/// Parameters for [`mxm`] (Spec92 Nasa7 matrix multiply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MxmParams {
    /// Memory banks / clusters the arrays are interleaved across; the
    /// loop is unrolled this many times (the congruence pass "usually
    /// unrolls the loops by the number of clusters or tiles").
    pub n_banks: u16,
    /// Dot-product depth (the k-loop extent of the scheduled region).
    pub k_depth: usize,
    /// Result columns computed per unrolled row.
    pub j_width: usize,
}

impl MxmParams {
    /// A small instance (4 banks, 8-deep dot products, 2 columns).
    #[must_use]
    pub fn small() -> Self {
        MxmParams {
            n_banks: 4,
            k_depth: 8,
            j_width: 2,
        }
    }

    /// Instance sized for an `n_banks`-cluster machine.
    #[must_use]
    pub fn for_banks(n_banks: u16) -> Self {
        MxmParams {
            n_banks,
            k_depth: 8,
            j_width: 2,
        }
    }
}

impl Default for MxmParams {
    fn default() -> Self {
        MxmParams::small()
    }
}

/// `mxm`: `C[i][j] = Σ_k A[i][k] · B[k][j]`, i-loop unrolled by the
/// bank count. Rows of `A` and `C` are banked by row index, `B` by
/// `k`; the `B` loads are shared across the unrolled iterations, which
/// creates the cross-cluster reuse the schedulers must manage.
#[must_use]
pub fn mxm(params: MxmParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    for j in 0..params.j_width {
        // B[k][j] loads shared by every unrolled row.
        let b_col: Vec<_> = (0..params.k_depth)
            .map(|k| kb.load(k as i64, &format!("B[{k}][{j}]")))
            .collect();
        for u in 0..i64::from(params.n_banks) {
            let a_row: Vec<_> = (0..params.k_depth)
                .map(|k| kb.load(u, &format!("A[{u}][{k}]")))
                .collect();
            let prods: Vec<_> = (0..params.k_depth)
                .map(|k| kb.op(Opcode::FMul, &[a_row[k], b_col[k]]))
                .collect();
            let sum = kb.reduce_tree(Opcode::FAdd, &prods);
            kb.store(u, &format!("C[{u}][{j}]"), sum);
        }
    }
    kb.finish("mxm")
}

/// Parameters for [`vvmul`] (elementwise vector multiply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VvmulParams {
    /// Banks / unroll factor.
    pub n_banks: u16,
    /// Elements computed per bank.
    pub per_bank: usize,
}

impl VvmulParams {
    /// A small instance.
    #[must_use]
    pub fn small() -> Self {
        VvmulParams {
            n_banks: 4,
            per_bank: 8,
        }
    }

    /// Instance sized for an `n_banks`-cluster machine.
    #[must_use]
    pub fn for_banks(n_banks: u16) -> Self {
        VvmulParams {
            n_banks,
            per_bank: 8,
        }
    }
}

impl Default for VvmulParams {
    fn default() -> Self {
        VvmulParams::small()
    }
}

/// `vvmul`: `c[i] = a[i] · b[i]`, fully unrolled — the paper's "simple
/// matrix multiplication", an embarrassingly parallel graph whose
/// optimal partition follows the banking exactly.
#[must_use]
pub fn vvmul(params: VvmulParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    for e in 0..(i64::from(params.n_banks) * params.per_bank as i64) {
        let a = kb.load(e, &format!("a[{e}]"));
        let b = kb.load(e, &format!("b[{e}]"));
        let p = kb.op(Opcode::FMul, &[a, b]);
        kb.store(e, &format!("c[{e}]"), p);
    }
    kb.finish("vvmul")
}

/// Parameters for [`fir`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FirParams {
    /// Banks / unroll factor.
    pub n_banks: u16,
    /// Number of taps.
    pub taps: usize,
}

impl FirParams {
    /// A small instance (8 taps).
    #[must_use]
    pub fn small() -> Self {
        FirParams {
            n_banks: 4,
            taps: 8,
        }
    }

    /// Instance sized for an `n_banks`-cluster machine.
    #[must_use]
    pub fn for_banks(n_banks: u16) -> Self {
        FirParams { n_banks, taps: 8 }
    }
}

impl Default for FirParams {
    fn default() -> Self {
        FirParams::small()
    }
}

/// `fir`: `y[n] = Σ_t c[t] · x[n−t]`, n-loop unrolled by the bank
/// count. Sample loads are banked by sample index, so each output's
/// taps spread across clusters — a graph that punishes naive locality
/// *and* naive parallelism. The accumulation is a serial chain
/// (strict FP order), giving each output a real critical path.
#[must_use]
pub fn fir(params: FirParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    let coeffs: Vec<_> = (0..params.taps)
        .map(|t| kb.load_free(&format!("c[{t}]")))
        .collect();
    for n in 0..i64::from(params.n_banks) {
        let prods: Vec<_> = (0..params.taps)
            .map(|t| {
                let x = kb.load(n - t as i64, &format!("x[{}]", n - t as i64));
                kb.op(Opcode::FMul, &[x, coeffs[t]])
            })
            .collect();
        let sum = kb.reduce_chain(Opcode::FAdd, &prods);
        kb.store(n, &format!("y[{n}]"), sum);
    }
    kb.finish("fir")
}

/// Parameters for [`yuv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YuvParams {
    /// Banks / unroll factor.
    pub n_banks: u16,
    /// Pixels converted per bank.
    pub pixels_per_bank: usize,
}

impl YuvParams {
    /// A small instance.
    #[must_use]
    pub fn small() -> Self {
        YuvParams {
            n_banks: 4,
            pixels_per_bank: 3,
        }
    }

    /// Instance sized for an `n_banks`-cluster machine.
    #[must_use]
    pub fn for_banks(n_banks: u16) -> Self {
        YuvParams {
            n_banks,
            pixels_per_bank: 3,
        }
    }
}

impl Default for YuvParams {
    fn default() -> Self {
        YuvParams::small()
    }
}

/// `yuv`: RGB→YUV color conversion. Per pixel: three banked loads, a
/// 3×3 constant matrix of integer multiply-adds with shifts, three
/// banked stores. Integer-heavy and embarrassingly parallel.
#[must_use]
pub fn yuv(params: YuvParams) -> SchedulingUnit {
    let mut kb = Kb::new(params.n_banks);
    for p in 0..(i64::from(params.n_banks) * params.pixels_per_bank as i64) {
        let r = kb.load(p, &format!("r[{p}]"));
        let g = kb.load(p, &format!("g[{p}]"));
        let b = kb.load(p, &format!("b[{p}]"));
        for (out, label) in [(0, "y"), (1, "u"), (2, "v")] {
            let _ = out;
            let cr = kb.constant(&format!("k_{label}r"));
            let cg = kb.constant(&format!("k_{label}g"));
            let cb = kb.constant(&format!("k_{label}b"));
            let tr = kb.op(Opcode::IntMul, &[r, cr]);
            let tg = kb.op(Opcode::IntMul, &[g, cg]);
            let tb = kb.op(Opcode::IntMul, &[b, cb]);
            let s1 = kb.op(Opcode::IntAlu, &[tr, tg]);
            let s2 = kb.op(Opcode::IntAlu, &[s1, tb]);
            let sh = kb.op(Opcode::Shift, &[s2]);
            kb.store(p, &format!("{label}[{p}]"), sh);
        }
    }
    kb.finish("yuv")
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::ShapeStats;

    #[test]
    fn mxm_is_fat_with_heavy_preplacement() {
        let unit = mxm(MxmParams::small());
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        assert!(s.instr_count() > 100, "{s}");
        assert!(s.is_fat(), "{s}");
        assert!(s.preplaced_fraction() > 0.3, "{s}");
    }

    #[test]
    fn mxm_scales_with_banks() {
        let small = mxm(MxmParams::for_banks(2));
        let large = mxm(MxmParams::for_banks(16));
        assert!(large.dag().len() > small.dag().len() * 4);
    }

    #[test]
    fn vvmul_is_embarrassingly_parallel() {
        let unit = vvmul(VvmulParams::small());
        let s = ShapeStats::compute(unit.dag(), |_| 1);
        assert!(s.avg_parallelism() > 8.0, "{s}");
        // Bank-following assignment would cut zero edges.
        assert!(s.preplaced_fraction() > 0.7, "{s}");
    }

    #[test]
    fn fir_outputs_have_serial_accumulation() {
        let unit = fir(FirParams::small());
        let time = convergent_ir::TimeAnalysis::compute(unit.dag(), |_| 1);
        // Chain of 7 adds after mul after load: CPL ≥ 9.
        assert!(time.critical_path_length() >= 9);
    }

    #[test]
    fn yuv_is_integer_only() {
        let unit = yuv(YuvParams::small());
        assert!(unit.dag().instrs().iter().all(|i| !i.opcode().is_float()));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = mxm(MxmParams::small());
        let b = mxm(MxmParams::small());
        assert_eq!(a.dag().len(), b.dag().len());
        assert_eq!(a.dag().edge_count(), b.dag().edge_count());
    }
}
