//! Unified Assign-and-Schedule (UAS).
//!
//! Özer, Banerjia, and Conte (MICRO-31, 1998) integrate cluster
//! assignment into a cycle-driven list scheduler: each cycle, ready
//! operations are considered in critical-path priority order, and each
//! operation tries clusters in a priority order, settling on the first
//! cluster where its operands can arrive in time and an issue slot is
//! free. Decisions are final — the phase-ordering contrast to
//! convergent scheduling that the paper draws.
//!
//! Following Section 5 of the convergent-scheduling paper, our cluster
//! priority function is "the CPSC heuristic … modified to give the
//! highest priority to the home cluster of preplaced instructions":
//! home first, then clusters ordered by earliest operand arrival
//! (completion-driven), breaking ties toward lightly loaded clusters.

use std::collections::HashSet;

use convergent_ir::{ClusterId, Cycle, Dag, InstrId, OpClass};
use convergent_machine::Machine;
use convergent_sim::{effective_latency_in, ScheduleBuilder, SpaceTimeSchedule};

use crate::list::{cycle_limit, CommTracker, ResourceState};
use crate::{cp_priorities, ScheduleError, Scheduler};

/// The UAS scheduler. See the module docs.
///
/// # Example
///
/// ```
/// use convergent_ir::{DagBuilder, Opcode};
/// use convergent_machine::Machine;
/// use convergent_schedulers::{Scheduler, UasScheduler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let x = b.instr(Opcode::IntAlu);
/// let y = b.instr(Opcode::IntAlu);
/// b.edge(x, y)?;
/// let dag = b.build()?;
/// let schedule = UasScheduler::new().schedule(&dag, &Machine::chorus_vliw(4))?;
/// assert!(schedule.makespan().get() >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct UasScheduler {
    _private: (),
}

impl UasScheduler {
    /// Creates a UAS scheduler.
    #[must_use]
    pub fn new() -> Self {
        UasScheduler::default()
    }
}

impl Scheduler for UasScheduler {
    fn name(&self) -> &str {
        "uas"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> Result<SpaceTimeSchedule, ScheduleError> {
        let n = dag.len();
        let priorities = cp_priorities(dag, machine);
        let hard = machine.memory().preplacement_is_hard();

        crate::precondition::check_inputs(dag, machine)?;

        let mut resources = ResourceState::new(machine);
        let mut comms = CommTracker::new();
        let mut cluster_of: Vec<Option<ClusterId>> = vec![None; n];
        let mut start: Vec<Option<u32>> = vec![None; n];
        let mut finish: Vec<u32> = vec![0; n];
        let mut fu_of: Vec<usize> = vec![0; n];
        let mut load: Vec<u32> = vec![0; machine.n_clusters()];
        let mut unsched_preds: Vec<usize> = dag.ids().map(|i| dag.preds(i).len()).collect();
        let mut pending: Vec<InstrId> = dag
            .ids()
            .filter(|&i| unsched_preds[i.index()] == 0)
            .collect();
        let mut n_placed = 0usize;
        let limit = cycle_limit(dag, machine);

        let mut t: u32 = 0;
        while n_placed < n {
            if t > limit {
                return Err(ScheduleError::NoProgress { cycle: t });
            }
            pending.sort_by_key(|&i| (priorities[i.index()], i));
            let mut k = 0;
            while k < pending.len() {
                let i = pending[k];
                match try_place(
                    dag,
                    machine,
                    i,
                    t,
                    hard,
                    &mut resources,
                    &mut comms,
                    &cluster_of,
                    &finish,
                    &load,
                ) {
                    Some((c, fu)) => {
                        resources.reserve(c, fu, t);
                        cluster_of[i.index()] = Some(c);
                        start[i.index()] = Some(t);
                        fu_of[i.index()] = fu;
                        finish[i.index()] = t + effective_latency_in(dag, machine, i, c);
                        load[c.index()] += 1;
                        n_placed += 1;
                        pending.swap_remove(k);
                        for &s in dag.succs(i) {
                            unsched_preds[s.index()] -= 1;
                            if unsched_preds[s.index()] == 0 {
                                pending.push(s);
                            }
                        }
                        pending.sort_by_key(|&i| (priorities[i.index()], i));
                        k = 0;
                    }
                    None => k += 1,
                }
            }
            t += 1;
        }

        let mut builder = ScheduleBuilder::new(dag);
        for i in dag.ids() {
            builder.place(
                i,
                cluster_of[i.index()].expect("placed"),
                fu_of[i.index()],
                Cycle::new(start[i.index()].expect("placed")),
            );
        }
        comms.emit_into(&mut builder);
        builder
            .build(machine)
            .map_err(|e| ScheduleError::ProducedInvalid(e.to_string()))
    }
}

/// Attempts to place `i` at cycle `t` on the best cluster; commits
/// transfer reservations and returns `(cluster, fu)` on success.
#[allow(clippy::too_many_arguments)]
fn try_place(
    dag: &Dag,
    machine: &Machine,
    i: InstrId,
    t: u32,
    hard: bool,
    resources: &mut ResourceState,
    comms: &mut CommTracker,
    cluster_of: &[Option<ClusterId>],
    finish: &[u32],
    load: &[u32],
) -> Option<(ClusterId, usize)> {
    let instr = dag.instr(i);
    let home = instr.preplacement();

    // Candidate clusters in UAS priority order.
    let mut candidates: Vec<ClusterId> = machine
        .cluster_ids()
        .filter(|&c| machine.cluster_can_execute(c, instr.class()))
        .collect();
    if hard {
        if let Some(h) = home {
            candidates.retain(|&c| c == h);
        }
    }
    let est_ready = |c: ClusterId| -> u32 {
        dag.preds(i)
            .iter()
            .map(|&p| {
                let pc = cluster_of[p.index()].expect("preds scheduled before successors");
                if pc == c {
                    finish[p.index()]
                } else {
                    comms
                        .arrival(p, c)
                        .unwrap_or(finish[p.index()] + machine.comm_latency(pc, c))
                }
            })
            .max()
            .unwrap_or(0)
    };
    candidates.sort_by_key(|&c| {
        let home_rank = u32::from(home != Some(c));
        (home_rank, est_ready(c), load[c.index()], c)
    });

    'cluster: for c in candidates {
        let Some(fu) = resources.free_fu(machine, c, instr.class(), t) else {
            continue;
        };
        // Check operand availability at c by cycle t, planning any
        // copies we would need to commit.
        let mut planned: Vec<(ClusterId, usize, u32, InstrId, ClusterId)> = Vec::new();
        let mut planned_slots: HashSet<(usize, usize, u32)> = HashSet::new();
        for &p in dag.preds(i) {
            let pc = cluster_of[p.index()].expect("pred scheduled");
            if pc == c {
                if finish[p.index()] > t {
                    continue 'cluster;
                }
                continue;
            }
            if let Some(a) = comms.arrival(p, c) {
                if a <= t {
                    continue;
                }
                continue 'cluster;
            }
            let latency = machine.comm_latency(pc, c);
            if machine.comm().register_mapped {
                if finish[p.index()] + latency > t {
                    continue 'cluster;
                }
                // Commit-time record below; wires need no slot.
                planned.push((pc, usize::MAX, finish[p.index()], p, c));
            } else {
                // Need a transfer slot s in [finish(p), t - latency].
                if t < latency {
                    continue 'cluster;
                }
                let deadline = t - latency;
                let mut found = None;
                let mut s = finish[p.index()];
                while s <= deadline {
                    if let Some(tfu) = resources.free_fu(machine, pc, OpClass::Copy, s) {
                        if !planned_slots.contains(&(pc.index(), tfu, s)) {
                            found = Some((tfu, s));
                            break;
                        }
                    }
                    s += 1;
                }
                match found {
                    Some((tfu, s)) => {
                        planned_slots.insert((pc.index(), tfu, s));
                        planned.push((pc, tfu, s, p, c));
                    }
                    None => continue 'cluster,
                }
            }
        }
        // Commit.
        for (pc, tfu, s, p, dest) in planned {
            if tfu == usize::MAX {
                let arrival = s + machine.comm_latency(pc, dest);
                comms.record(p, pc, dest, s, None, arrival);
            } else {
                resources.reserve(pc, tfu, s);
                let arrival = s + machine.comm_latency(pc, dest);
                comms.record(p, pc, dest, s, Some(tfu), arrival);
            }
        }
        return Some((c, fu));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use convergent_ir::{DagBuilder, Opcode};
    use convergent_sim::validate;

    fn c(i: u16) -> ClusterId {
        ClusterId::new(i)
    }

    #[test]
    fn parallel_work_spreads_across_clusters() {
        // 8 independent FMuls on 4 chorus clusters (1 FPU each): two
        // rounds of 4.
        let mut b = DagBuilder::new();
        for _ in 0..8 {
            b.instr(Opcode::FMul);
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(4);
        let s = UasScheduler::new().schedule(&dag, &m).unwrap();
        validate(&dag, &m, &s).unwrap();
        let loads = s.assignment().loads(4);
        assert_eq!(loads, vec![2, 2, 2, 2]);
        // 2 issue rounds of pipelined 7-cycle fmuls, plus the 1-cycle
        // live-in fetch for roots executing off the data-home cluster.
        assert!((8..=9).contains(&s.makespan().get()), "{}", s.makespan());
    }

    #[test]
    fn chain_stays_local() {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..5 {
            let nxt = b.instr(Opcode::IntAlu);
            b.edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(4);
        let s = UasScheduler::new().schedule(&dag, &m).unwrap();
        validate(&dag, &m, &s).unwrap();
        // Communication would only slow a pure chain; UAS keeps it on
        // one cluster and finishes in 6 cycles.
        assert_eq!(s.makespan().get(), 6);
        assert_eq!(s.comm_count(), 0);
    }

    #[test]
    fn preplaced_home_wins_on_vliw() {
        let mut b = DagBuilder::new();
        let ld = b.preplaced_instr(Opcode::Load, c(2));
        let ad = b.instr(Opcode::IntAlu);
        b.edge(ld, ad).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(4);
        let s = UasScheduler::new().schedule(&dag, &m).unwrap();
        validate(&dag, &m, &s).unwrap();
        assert_eq!(s.op(ld).cluster, c(2));
    }

    #[test]
    fn hard_preplacement_respected_on_raw() {
        let mut b = DagBuilder::new();
        let l0 = b.preplaced_instr(Opcode::Load, c(0));
        let l3 = b.preplaced_instr(Opcode::Load, c(3));
        let ad = b.instr(Opcode::IntAlu);
        b.edge(l0, ad).unwrap();
        b.edge(l3, ad).unwrap();
        let dag = b.build().unwrap();
        let m = Machine::raw(4);
        let s = UasScheduler::new().schedule(&dag, &m).unwrap();
        validate(&dag, &m, &s).unwrap();
        assert_eq!(s.op(l0).cluster, c(0));
        assert_eq!(s.op(l3).cluster, c(3));
    }

    #[test]
    fn cross_cluster_copies_fit_transfer_bandwidth() {
        // A producer feeding consumers on all other clusters exercises
        // multiple copies from one cluster.
        let mut b = DagBuilder::new();
        let p = b.instr(Opcode::IntAlu);
        let mut uses = Vec::new();
        for _ in 0..12 {
            let u = b.instr(Opcode::FMul);
            b.edge(p, u).unwrap();
            uses.push(u);
        }
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(4);
        let s = UasScheduler::new().schedule(&dag, &m).unwrap();
        validate(&dag, &m, &s).unwrap();
    }

    #[test]
    fn bad_home_rejected() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, c(9));
        let dag = b.build().unwrap();
        let m = Machine::chorus_vliw(2);
        assert!(matches!(
            UasScheduler::new().schedule(&dag, &m),
            Err(ScheduleError::BadHomeCluster { .. })
        ));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(UasScheduler::new().name(), "uas");
    }
}
