//! COMM — communication minimization.
//!
//! "This pass reduces communication load by increasing the weight for
//! an instruction to be in the same clusters where most of [its]
//! neighbors (successors and predecessors in the dependence graph)
//! are. This is done by summing the weights of all the neighbors in a
//! specific cluster, and using that to skew weights in the correct
//! direction."
//!
//! The paper's formula multiplies `W[i,t,c]` by `Σ_n W[n,t,c]` —
//! literally the neighbors' weight in the *same time slot*. Dependent
//! neighbors never share a time slot, so (as the prose says) we sum
//! each neighbor's weight "in a specific cluster", i.e. its cluster
//! marginal, and use that as the skew factor (plus a small floor so a
//! cluster no neighbor currently favours is dampened, not
//! obliterated). This interpretation is flagged in DESIGN.md.
//!
//! Two extras from the paper, both on by default:
//!
//! * "a variant … that considers grand-parents and grand-children,
//!   and we usually run it together with COMM" — grand-neighbors
//!   contribute with half weight;
//! * "for each i: W[i, tᵢ, cᵢ] ← 2 · W[i, tᵢ, cᵢ]" — the preferred
//!   slot is reinforced, sharpening the map.
//!
//! # Prologue / kernel split
//!
//! The [`Pass::row_kernel`] prologue snapshots every instruction's
//! normalized cluster marginals (into [`PassScratch::a`], reused
//! across runs — no steady-state allocation) and folds the
//! neighbor/grand-neighbor sums into a full `n_instrs × n_clusters`
//! skew matrix in [`PassScratch::b`]. The kernel then applies each
//! row's skew via [`RowOps::scale_clusters_row`] and, fused into the
//! same per-row visit, the preferred-slot reinforcement. The fusion is
//! state-identical to the historical two-loop form because both the
//! skew scaling and the reinforcement read-off touch only row `i`.

use convergent_analysis::{EffectOp, Interval, PassEffect};
use convergent_ir::{Dag, InstrId, TimeAnalysis};
use convergent_machine::Machine;
use rand::rngs::StdRng;

use crate::weights::RowOps;
use crate::{Pass, PassContext, PassScratch, PreferenceMap, RowKernel};

/// Floor added to neighbor skew factors so unvisited clusters are
/// dampened rather than zeroed (keeps the map recoverable, feature 3
/// of Section 2).
const SKEW_FLOOR: f64 = 0.05;

/// The COMM pass. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Comm {
    grand_neighbors: bool,
    reinforce_preferred: bool,
}

impl Comm {
    /// Creates the pass with grand-neighbors and preferred-slot
    /// reinforcement enabled, the configuration the paper runs.
    #[must_use]
    pub fn new() -> Self {
        Comm {
            grand_neighbors: true,
            reinforce_preferred: true,
        }
    }

    /// Enables or disables the grand-parent/grand-child variant.
    #[must_use]
    pub fn with_grand_neighbors(mut self, on: bool) -> Self {
        self.grand_neighbors = on;
        self
    }

    /// Enables or disables the `W[i,tᵢ,cᵢ] ← 2W[i,tᵢ,cᵢ]`
    /// reinforcement step.
    #[must_use]
    pub fn with_reinforcement(mut self, on: bool) -> Self {
        self.reinforce_preferred = on;
        self
    }
}

impl Default for Comm {
    fn default() -> Self {
        Comm::new()
    }
}

/// The data-parallel half of COMM: the fully folded skew matrix plus
/// the reinforcement flag.
struct CommKernel<'k> {
    /// Row-major `n_instrs × n_clusters` skew factors.
    skew: &'k [f64],
    n_clusters: usize,
    reinforce: bool,
}

impl RowKernel for CommKernel<'_> {
    fn apply(&self, rows: &mut dyn RowOps) {
        let nc = self.n_clusters;
        let reinforce = self.reinforce.then_some(2.0);
        for i in rows.instr_range() {
            let ii = i as usize;
            rows.comm_row(
                InstrId::new(i),
                &self.skew[ii * nc..(ii + 1) * nc],
                reinforce,
            );
        }
    }
}

impl Pass for Comm {
    fn name(&self) -> &'static str {
        "COMM"
    }

    fn run(&self, ctx: &mut PassContext<'_>) {
        if let Some(kernel) = self.row_kernel(
            ctx.dag,
            ctx.machine,
            ctx.time,
            ctx.rng,
            ctx.weights,
            ctx.scratch,
        ) {
            kernel.apply(ctx.weights);
        }
    }

    fn row_kernel<'k>(
        &self,
        dag: &'k Dag,
        _machine: &'k Machine,
        _time: &'k TimeAnalysis,
        _rng: &mut StdRng,
        weights: &PreferenceMap,
        scratch: &'k mut PassScratch,
    ) -> Option<Box<dyn RowKernel + 'k>> {
        let n_clusters = weights.n_clusters();
        let n_instrs = weights.n_instrs();
        // Snapshot normalized cluster marginals (one flat row-major
        // buffer rather than a Vec per instruction) so the pass result
        // does not depend on instruction iteration order. The buffer
        // is driver-owned scratch, reused run to run.
        let marginal = &mut scratch.a;
        marginal.clear();
        marginal.resize(n_instrs * n_clusters, 0.0);
        weights.cluster_marginals_into(marginal);

        // Fold neighbor (and half-weight grand-neighbor) marginals
        // into the full skew matrix. `mark` is a stamp array standing
        // in for per-instruction hash sets when deduplicating
        // grand-neighbors: `mark[g] == i` ⇔ `g` was already counted
        // (as `i` itself, a direct neighbor, or an earlier
        // grand-neighbor) while processing instruction `i`. It is
        // re-filled with `u32::MAX` every run so stale stamps from a
        // previous run can never collide.
        let skew = &mut scratch.b;
        skew.clear();
        skew.resize(n_instrs * n_clusters, 0.0);
        let mark = &mut scratch.mark;
        mark.clear();
        mark.resize(if self.grand_neighbors { n_instrs } else { 0 }, u32::MAX);
        for i in dag.ids() {
            let row = &mut skew[i.index() * n_clusters..(i.index() + 1) * n_clusters];
            row.fill(SKEW_FLOOR);
            for n in dag.neighbors(i) {
                let nb = n.index() * n_clusters;
                for (rc, &mc) in row.iter_mut().zip(&marginal[nb..nb + n_clusters]) {
                    *rc += mc;
                }
            }
            if self.grand_neighbors {
                let stamp = i.index() as u32;
                mark[i.index()] = stamp;
                for n in dag.neighbors(i) {
                    mark[n.index()] = stamp;
                }
                for n in dag.neighbors(i) {
                    for g in dag.neighbors(n) {
                        if mark[g.index()] != stamp {
                            mark[g.index()] = stamp;
                            let gb = g.index() * n_clusters;
                            for (rc, &mc) in row.iter_mut().zip(&marginal[gb..gb + n_clusters]) {
                                *rc += 0.5 * mc;
                            }
                        }
                    }
                }
            }
        }

        let scratch: &'k PassScratch = scratch;
        Some(Box::new(CommKernel {
            skew: &scratch.b,
            n_clusters,
            reinforce: self.reinforce_preferred,
        }))
    }

    fn effect(&self) -> PassEffect {
        // Neighbor-marginal skews: floored at SKEW_FLOOR, bounded by
        // the (finite) neighbor count, so strictly positive and
        // finite. The optional reinforcement doubles one preferred
        // cell per row — on a fully uniform map the argmax tie-break
        // picks a cluster deterministically, which is what makes the
        // reinforced variant a symmetry breaker.
        let mut ops = vec![EffectOp::ScaleClusters {
            factor: Interval::new(SKEW_FLOOR, f64::MAX),
        }];
        if self.reinforce_preferred {
            ops.push(EffectOp::ScaleCells {
                factor: Interval::point(2.0),
            });
        }
        let eff = PassEffect::new(ops);
        if self.reinforce_preferred {
            eff.breaks_symmetry()
        } else {
            eff
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::testutil::Rig;
    use convergent_ir::{ClusterId, DagBuilder, Opcode};
    use convergent_machine::Machine;

    fn c(k: u16) -> ClusterId {
        ClusterId::new(k)
    }

    #[test]
    fn instruction_follows_its_neighbors() {
        // y's only neighbor x is strongly on cluster 1.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(4));
        rig.weights.scale_cluster(x, c(1), 100.0);
        rig.weights.normalize_all();
        rig.run(&Comm::new());
        rig.weights.assert_invariants(1e-9);
        assert_eq!(rig.weights.preferred_cluster(y), c(1));
        assert!(rig.weights.confidence(y) > 2.0);
    }

    #[test]
    fn grand_neighbors_reach_two_hops() {
        // chain x -> m -> y; x pinned to cluster 2; with the
        // grand-neighbor variant y hears about it in one COMM run.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let m = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, m).unwrap();
        b.edge(m, y).unwrap();
        let dag = b.build().unwrap();

        let mut with = Rig::new(dag.clone(), Machine::raw(4));
        with.weights.scale_cluster(x, c(2), 100.0);
        with.weights.normalize_all();
        with.run(&Comm::new().with_reinforcement(false));
        let conf_with = with.weights.cluster_weight(y, c(2));

        let mut without = Rig::new(dag, Machine::raw(4));
        without.weights.scale_cluster(x, c(2), 100.0);
        without.weights.normalize_all();
        without.run(
            &Comm::new()
                .with_grand_neighbors(false)
                .with_reinforcement(false),
        );
        let conf_without = without.weights.cluster_weight(y, c(2));
        assert!(
            conf_with > conf_without,
            "grand-neighbors must strengthen the pull: {conf_with} vs {conf_without}"
        );
    }

    #[test]
    fn reinforcement_sharpens_preferred_slot() {
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.weights.scale_cluster(x, c(1), 3.0);
        rig.weights.normalize_all();
        let before = rig.weights.confidence(x);
        rig.run(&Comm::new());
        // An isolated instruction has no neighbors: only the
        // reinforcement step applies, and it must increase confidence.
        assert!(rig.weights.confidence(x) > before);
    }

    #[test]
    fn symmetric_inputs_stay_symmetric() {
        // Without reinforcement, an unbiased pair stays unbiased.
        let mut b = DagBuilder::new();
        let x = b.instr(Opcode::IntAlu);
        let y = b.instr(Opcode::IntAlu);
        b.edge(x, y).unwrap();
        let dag = b.build().unwrap();
        let mut rig = Rig::new(dag, Machine::raw(2));
        rig.run(&Comm::new().with_reinforcement(false));
        rig.weights.assert_invariants(1e-9);
        assert!((rig.weights.confidence(x) - 1.0).abs() < 1e-9);
        assert!((rig.weights.confidence(y) - 1.0).abs() < 1e-9);
    }
}
