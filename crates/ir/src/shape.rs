//! Graph-shape statistics.
//!
//! Figure 2 of the paper contrasts "long, narrow graphs dominated by a
//! few critical paths" (non-numeric code, e.g. the fpppp kernel) with
//! "fat, parallel graphs" (unrolled numeric loops). [`ShapeStats`]
//! quantifies that taxonomy so the workload generators and the
//! `figure2` harness can verify each reconstructed benchmark sits on
//! the intended end of the spectrum.

use crate::{Dag, Instruction, TimeAnalysis};

/// Structural summary of a dependence graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ShapeStats {
    n_instrs: usize,
    n_edges: usize,
    height: u32,
    max_width: usize,
    avg_parallelism: f64,
    critical_fraction: f64,
    preplaced_fraction: f64,
}

impl ShapeStats {
    /// Computes shape statistics using the given latency function.
    pub fn compute<F>(dag: &Dag, latency: F) -> Self
    where
        F: Fn(&Instruction) -> u32,
    {
        let time = TimeAnalysis::compute(dag, latency);
        Self::from_time(dag, &time)
    }

    /// Computes shape statistics from an existing [`TimeAnalysis`].
    #[must_use]
    pub fn from_time(dag: &Dag, time: &TimeAnalysis) -> Self {
        let cpl = time.critical_path_length();
        let mut width = vec![0usize; cpl.max(1) as usize];
        let mut critical = 0usize;
        for i in dag.ids() {
            width[time.earliest_start(i) as usize] += 1;
            if time.is_critical(i) {
                critical += 1;
            }
        }
        let n = dag.len();
        ShapeStats {
            n_instrs: n,
            n_edges: dag.edge_count(),
            height: cpl,
            max_width: width.iter().copied().max().unwrap_or(0),
            avg_parallelism: n as f64 / f64::from(cpl.max(1)),
            critical_fraction: critical as f64 / n as f64,
            preplaced_fraction: dag.preplaced_count() as f64 / n as f64,
        }
    }

    /// Number of instructions.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.n_instrs
    }

    /// Number of dependence edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Critical-path length in cycles (graph "height").
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Maximum number of instructions sharing an earliest-start time
    /// (graph "width").
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Instructions divided by height: the available parallelism on an
    /// infinitely wide machine.
    #[must_use]
    pub fn avg_parallelism(&self) -> f64 {
        self.avg_parallelism
    }

    /// Fraction of instructions with zero slack.
    #[must_use]
    pub fn critical_fraction(&self) -> f64 {
        self.critical_fraction
    }

    /// Fraction of instructions that are preplaced.
    #[must_use]
    pub fn preplaced_fraction(&self) -> f64 {
        self.preplaced_fraction
    }

    /// `true` for graphs on the "fat, parallel" end of Figure 2's
    /// spectrum (average parallelism of at least four).
    #[must_use]
    pub fn is_fat(&self) -> bool {
        self.avg_parallelism >= 4.0
    }

    /// `true` for "long, narrow" graphs dominated by critical paths.
    #[must_use]
    pub fn is_narrow(&self) -> bool {
        self.avg_parallelism < 2.0
    }
}

impl std::fmt::Display for ShapeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} instrs, {} edges, height {}, width {}, parallelism {:.2}, {:.0}% critical, {:.0}% preplaced",
            self.n_instrs,
            self.n_edges,
            self.height,
            self.max_width,
            self.avg_parallelism,
            self.critical_fraction * 100.0,
            self.preplaced_fraction * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterId, DagBuilder, Opcode};

    #[test]
    fn chain_is_narrow() {
        let mut b = DagBuilder::new();
        let mut prev = b.instr(Opcode::IntAlu);
        for _ in 0..9 {
            let next = b.instr(Opcode::IntAlu);
            b.edge(prev, next).unwrap();
            prev = next;
        }
        let dag = b.build().unwrap();
        let s = ShapeStats::compute(&dag, |_| 1);
        assert_eq!(s.height(), 10);
        assert_eq!(s.max_width(), 1);
        assert!(s.is_narrow());
        assert!(!s.is_fat());
        assert!((s.critical_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_graph_is_fat() {
        let mut b = DagBuilder::new();
        for _ in 0..16 {
            b.instr(Opcode::FMul);
        }
        let dag = b.build().unwrap();
        let s = ShapeStats::compute(&dag, |_| 1);
        assert_eq!(s.height(), 1);
        assert_eq!(s.max_width(), 16);
        assert!(s.is_fat());
        assert_eq!(s.avg_parallelism(), 16.0);
    }

    #[test]
    fn preplaced_fraction_counted() {
        let mut b = DagBuilder::new();
        b.preplaced_instr(Opcode::Load, ClusterId::new(0));
        b.instr(Opcode::IntAlu);
        b.instr(Opcode::IntAlu);
        b.preplaced_instr(Opcode::Store, ClusterId::new(1));
        let dag = b.build().unwrap();
        let s = ShapeStats::compute(&dag, |_| 1);
        assert!((s.preplaced_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut b = DagBuilder::new();
        b.instr(Opcode::IntAlu);
        let dag = b.build().unwrap();
        let s = ShapeStats::compute(&dag, |_| 1);
        let text = s.to_string();
        assert!(text.contains("1 instrs"));
        assert!(text.contains("height 1"));
    }
}
