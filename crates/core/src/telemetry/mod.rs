//! Telemetry: structured tracing, hot-path counters, and convergence
//! metrics for the convergent scheduler.
//!
//! The paper's central claim is that independent passes *converge*;
//! this module makes that process observable. Three kinds of signal
//! flow through one [`TelemetrySink`] trait threaded through
//! [`ConvergentScheduler`](crate::ConvergentScheduler):
//!
//! - **Spans** — the hierarchical timing tree of a run: `<run>` →
//!   `shard{k}` → stages (`<init>`, `<readoff>`, `<listsched>`,
//!   `<decompose>`, `<stitch>`) and passes → kernel phases
//!   (`PASS/<prologue>`, `PASS/<kernel>`, `PASS/<metrics>`). Paths are
//!   plain strings; shard membership is encoded as a `shard{k}/`
//!   prefix (see [`split_shard_prefix`]). The legacy
//!   [`PassProfile`](crate::PassProfile) is now just one sink
//!   implementation, so `--profile` output is unchanged.
//! - **Counters** — hot-path event counts batched per pass
//!   ([`CounterTotals`]): weight ops by kind, argmax-cache
//!   hits/misses/invalidations, band growths/densifications, boundary
//!   COMMs, and referee verdicts. The disabled path costs one
//!   predictable branch per already-cold call site; enabling is
//!   opt-in per [`PreferenceMap`](crate::PreferenceMap).
//! - **Convergence metrics** — per-pass measurements over the
//!   preference map ([`ConvergenceMetrics`]): mean confidence,
//!   decision churn, preference entropy, preplacement coverage.
//!   Computed only when a sink declares interest
//!   ([`SinkInterest::convergence`]), since the sweep costs a full
//!   pass worth of map reads.
//!
//! Two exporters ship with the module: [`ChromeTraceSink`] renders
//! Perfetto-loadable trace-event JSON (`csched --trace out.json`), and
//! [`PrometheusSink`] / [`MetricsRegistry`] render a Prometheus
//! text-exposition snapshot for the future `cschedd` daemon.
//! Telemetry never alters scheduling decisions — a suite-wide test
//! proves schedules are byte-identical with sinks attached or not.

mod convergence;
mod counters;
mod prom;
mod sink;
mod trace_json;

pub use convergence::{measure, ConvergenceMetrics, CONFIDENCE_CAP, CONVERGENCE_SAMPLE_CAP};
pub use counters::CounterTotals;
pub(crate) use counters::{BandStats, MapCounters, OpKind};
pub use prom::{parse_exposition, MetricsRegistry, PrometheusSink, DURATION_BUCKETS};
pub use sink::{
    split_shard_prefix, MultiSink, SinkInterest, SpanKind, TelemetryBuffer, TelemetryEvent,
    TelemetrySink,
};
pub use trace_json::{validate_chrome_trace, ChromeTraceSink, TraceStats};
