//! Graph analyses used by the scheduling heuristics.
//!
//! All timing analyses are latency-weighted: the earliest start of an
//! instruction is the longest chain of predecessor latencies leading to
//! it, exactly the `lp` of the paper's INITTIME pass, and the latest
//! start is `CPL − ls` where `ls` is the longest latency chain to any
//! leaf. The *level* of an instruction — "its distance from the furthest
//! root", used by LEVEL and EMPHCP — is its earliest start: the time it
//! would issue on a machine with infinite resources.

use std::collections::{HashMap, VecDeque};

use crate::{Dag, InstrId, Instruction};

/// Latency-weighted timing facts about every instruction in a DAG.
///
/// # Example
///
/// ```
/// use convergent_ir::{DagBuilder, Opcode, TimeAnalysis};
///
/// # fn main() -> Result<(), convergent_ir::IrError> {
/// let mut b = DagBuilder::new();
/// let a = b.instr(Opcode::Load);      // latency 3 below
/// let c = b.instr(Opcode::IntAlu);    // latency 1
/// b.edge(a, c)?;
/// let dag = b.build()?;
/// let t = TimeAnalysis::compute(&dag, |i| match i.opcode() {
///     Opcode::Load => 3,
///     _ => 1,
/// });
/// assert_eq!(t.earliest_start(a), 0);
/// assert_eq!(t.earliest_start(c), 3);
/// assert_eq!(t.critical_path_length(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TimeAnalysis {
    est: Vec<u32>,
    lst: Vec<u32>,
    lat: Vec<u32>,
    cpl: u32,
}

impl TimeAnalysis {
    /// Computes timing facts for `dag` under the given per-instruction
    /// latency function (normally `machine.latency_of(...)`).
    pub fn compute<F>(dag: &Dag, latency: F) -> Self
    where
        F: Fn(&Instruction) -> u32,
    {
        let n = dag.len();
        let lat: Vec<u32> = dag.instrs().iter().map(&latency).collect();
        let mut est = vec![0u32; n];
        for &i in dag.topo_order() {
            let mut e = 0;
            for &p in dag.preds(i) {
                e = e.max(est[p.index()] + lat[p.index()]);
            }
            est[i.index()] = e;
        }
        let cpl = dag
            .ids()
            .map(|i| est[i.index()] + lat[i.index()])
            .max()
            .unwrap_or(0);
        let mut lst = vec![0u32; n];
        for &i in dag.topo_order().iter().rev() {
            let l = if dag.succs(i).is_empty() {
                cpl - lat[i.index()]
            } else {
                dag.succs(i)
                    .iter()
                    .map(|&s| lst[s.index()])
                    .min()
                    .expect("non-leaf has successors")
                    .saturating_sub(lat[i.index()])
            };
            lst[i.index()] = l;
        }
        TimeAnalysis { est, lst, lat, cpl }
    }

    /// Earliest feasible issue time (`lp` in the paper): the longest
    /// latency chain from any root to `i`.
    #[must_use]
    pub fn earliest_start(&self, i: InstrId) -> u32 {
        self.est[i.index()]
    }

    /// Latest issue time that still permits a schedule of length
    /// [`Self::critical_path_length`] (`CPL − ls` in the paper).
    #[must_use]
    pub fn latest_start(&self, i: InstrId) -> u32 {
        self.lst[i.index()]
    }

    /// Latency of `i` as supplied at construction.
    #[must_use]
    pub fn latency(&self, i: InstrId) -> u32 {
        self.lat[i.index()]
    }

    /// Length of the critical path in cycles: the minimum possible
    /// makespan on a machine with unlimited resources and free
    /// communication.
    #[must_use]
    pub fn critical_path_length(&self) -> u32 {
        self.cpl
    }

    /// Scheduling freedom of `i`: `latest_start − earliest_start`.
    #[must_use]
    pub fn slack(&self, i: InstrId) -> u32 {
        self.lst[i.index()] - self.est[i.index()]
    }

    /// Returns `true` if `i` lies on a critical path (zero slack).
    #[must_use]
    pub fn is_critical(&self, i: InstrId) -> bool {
        self.slack(i) == 0
    }

    /// The paper's `level(i)`: issue time with infinite resources.
    /// Alias of [`Self::earliest_start`], kept for readability at call
    /// sites that mirror the paper's pseudocode (LEVEL, EMPHCP).
    #[must_use]
    pub fn level(&self, i: InstrId) -> u32 {
        self.earliest_start(i)
    }
}

/// One maximal critical path through a DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    instrs: Vec<InstrId>,
}

impl CriticalPath {
    /// Extracts one critical path (a chain of zero-slack instructions
    /// whose latencies sum to the critical-path length).
    ///
    /// Ties are broken toward the lowest instruction id, so extraction
    /// is deterministic.
    #[must_use]
    pub fn extract(dag: &Dag, time: &TimeAnalysis) -> Self {
        let start = dag
            .roots()
            .filter(|&r| time.is_critical(r))
            .min()
            .unwrap_or_else(|| {
                dag.roots()
                    .next()
                    .expect("non-empty dag has at least one root")
            });
        let mut instrs = vec![start];
        let mut cur = start;
        loop {
            let finish = time.earliest_start(cur) + time.latency(cur);
            let next = dag
                .succs(cur)
                .iter()
                .copied()
                .filter(|&s| time.is_critical(s) && time.earliest_start(s) == finish)
                .min();
            match next {
                Some(s) => {
                    instrs.push(s);
                    cur = s;
                }
                None => break,
            }
        }
        CriticalPath { instrs }
    }

    /// Instructions along the path, in dependence order.
    #[must_use]
    pub fn instrs(&self) -> &[InstrId] {
        &self.instrs
    }

    /// Number of instructions on the path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the path is empty (never the case for paths
    /// extracted from a valid DAG).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Lazily-computed undirected shortest-path distances between
/// instructions, measured in edges.
///
/// The paper's PLACEPROP divides cluster weights by the distance to the
/// nearest preplaced instruction of that cluster, and LEVEL measures the
/// distance between an instruction and a bin. Both treat the dependence
/// graph as undirected. BFS results are cached per source, so repeated
/// queries from the same instruction are `O(1)` after the first.
#[derive(Clone, Debug, Default)]
pub struct DistanceOracle {
    cache: HashMap<InstrId, Vec<u32>>,
}

/// Distance reported for unreachable instruction pairs (distinct weakly
/// connected components).
pub const UNREACHABLE: u32 = u32::MAX;

impl DistanceOracle {
    /// Creates an empty oracle.
    #[must_use]
    pub fn new() -> Self {
        DistanceOracle::default()
    }

    /// Undirected distance in edges from `a` to `b`;
    /// [`UNREACHABLE`] if they lie in different components.
    pub fn distance(&mut self, dag: &Dag, a: InstrId, b: InstrId) -> u32 {
        self.distances_from(dag, a)[b.index()]
    }

    /// All undirected distances from `src`, indexed by instruction id.
    pub fn distances_from(&mut self, dag: &Dag, src: InstrId) -> &[u32] {
        self.cache.entry(src).or_insert_with(|| Self::bfs(dag, src))
    }

    fn bfs(dag: &Dag, src: InstrId) -> Vec<u32> {
        let mut dist = vec![UNREACHABLE; dag.len()];
        let mut q = VecDeque::new();
        dist[src.index()] = 0;
        q.push_back(src);
        while let Some(i) = q.pop_front() {
            let d = dist[i.index()];
            for n in dag.neighbors(i) {
                if dist[n.index()] == UNREACHABLE {
                    dist[n.index()] = d + 1;
                    q.push_back(n);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DagBuilder, Opcode};

    fn unit_latency(_: &Instruction) -> u32 {
        1
    }

    /// chain: 0 -> 1 -> 2, plus independent 3
    fn chain_plus_island() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.instr(Opcode::IntAlu);
        let c = b.instr(Opcode::IntAlu);
        let d = b.instr(Opcode::IntAlu);
        b.instr(Opcode::IntAlu); // island
        b.edge(a, c).unwrap();
        b.edge(c, d).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn earliest_latest_on_chain() {
        let dag = chain_plus_island();
        let t = TimeAnalysis::compute(&dag, unit_latency);
        assert_eq!(t.critical_path_length(), 3);
        assert_eq!(t.earliest_start(InstrId::new(0)), 0);
        assert_eq!(t.earliest_start(InstrId::new(1)), 1);
        assert_eq!(t.earliest_start(InstrId::new(2)), 2);
        // Island may be scheduled anywhere in [0, CPL-1].
        assert_eq!(t.earliest_start(InstrId::new(3)), 0);
        assert_eq!(t.latest_start(InstrId::new(3)), 2);
        assert_eq!(t.slack(InstrId::new(3)), 2);
        assert!(t.is_critical(InstrId::new(0)));
        assert!(!t.is_critical(InstrId::new(3)));
    }

    #[test]
    fn latency_weighted_timing() {
        // load(3) -> mul(2) -> add(1); CPL = 6.
        let mut b = DagBuilder::new();
        let ld = b.instr(Opcode::Load);
        let mu = b.instr(Opcode::IntMul);
        let ad = b.instr(Opcode::IntAlu);
        b.edge(ld, mu).unwrap();
        b.edge(mu, ad).unwrap();
        let dag = b.build().unwrap();
        let t = TimeAnalysis::compute(&dag, |i| match i.opcode() {
            Opcode::Load => 3,
            Opcode::IntMul => 2,
            _ => 1,
        });
        assert_eq!(t.critical_path_length(), 6);
        assert_eq!(t.earliest_start(mu), 3);
        assert_eq!(t.earliest_start(ad), 5);
        assert_eq!(t.latest_start(ld), 0);
        assert_eq!(t.level(mu), 3);
    }

    #[test]
    fn critical_path_extraction() {
        // diamond with one long arm: 0 -> 1(mul, lat 3) -> 3; 0 -> 2(add) -> 3
        let mut b = DagBuilder::new();
        let s = b.instr(Opcode::Load);
        let long = b.instr(Opcode::IntMul);
        let short = b.instr(Opcode::IntAlu);
        let t = b.instr(Opcode::Store);
        b.edge(s, long).unwrap();
        b.edge(s, short).unwrap();
        b.edge(long, t).unwrap();
        b.edge(short, t).unwrap();
        let dag = b.build().unwrap();
        let ta = TimeAnalysis::compute(&dag, |i| match i.opcode() {
            Opcode::IntMul => 3,
            _ => 1,
        });
        let cp = CriticalPath::extract(&dag, &ta);
        assert_eq!(cp.instrs(), &[s, long, t]);
        assert_eq!(cp.len(), 3);
        assert!(!cp.is_empty());
    }

    #[test]
    fn critical_path_latencies_sum_to_cpl() {
        let dag = chain_plus_island();
        let ta = TimeAnalysis::compute(&dag, unit_latency);
        let cp = CriticalPath::extract(&dag, &ta);
        let total: u32 = cp.instrs().iter().map(|&i| ta.latency(i)).sum();
        assert_eq!(total, ta.critical_path_length());
    }

    #[test]
    fn distances_undirected_and_cached() {
        let dag = chain_plus_island();
        let mut o = DistanceOracle::new();
        assert_eq!(o.distance(&dag, InstrId::new(0), InstrId::new(2)), 2);
        // Undirected: distance is symmetric.
        assert_eq!(o.distance(&dag, InstrId::new(2), InstrId::new(0)), 2);
        // Island unreachable.
        assert_eq!(
            o.distance(&dag, InstrId::new(0), InstrId::new(3)),
            UNREACHABLE
        );
        assert_eq!(o.distance(&dag, InstrId::new(1), InstrId::new(1)), 0);
    }

    #[test]
    fn island_latest_start_uses_cpl() {
        let dag = chain_plus_island();
        let t = TimeAnalysis::compute(&dag, |_| 2);
        // CPL = 6; island latency 2 => latest start 4.
        assert_eq!(t.critical_path_length(), 6);
        assert_eq!(t.latest_start(InstrId::new(3)), 4);
    }
}
