//! Figure 2: the graph-shape taxonomy — "some [dependence graphs] are
//! thin and dominated by a few critical paths (a), while others are
//! fat and parallel (b)."
//!
//! Prints shape statistics for every reconstructed benchmark so the
//! two ends of the spectrum are visible: fpppp-kernel/sha on the
//! narrow end, the unrolled dense-matrix loops on the fat end.
//!
//! ```text
//! cargo run -p convergent-bench --bin figure2
//! ```

use convergent_ir::ShapeStats;
use convergent_machine::Machine;
use convergent_workloads::raw_suite;

fn main() {
    let machine = Machine::raw(16);
    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>8}{:>10}{:>11}{:>11}",
        "benchmark", "instrs", "edges", "height", "width", "parallel", "%critical", "%preplaced"
    );
    let mut rows: Vec<(String, ShapeStats)> = raw_suite(16)
        .iter()
        .map(|u| {
            (
                u.name().to_string(),
                ShapeStats::compute(u.dag(), |i| machine.latency_of(i)),
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        a.1.avg_parallelism()
            .partial_cmp(&b.1.avg_parallelism())
            .expect("finite")
    });
    for (name, s) in rows {
        let kind = if s.is_fat() {
            " (fat, Fig 2b)"
        } else if s.is_narrow() {
            " (narrow, Fig 2a)"
        } else {
            ""
        };
        println!(
            "{:<14}{:>8}{:>8}{:>8}{:>8}{:>10.2}{:>10.0}%{:>10.0}%{kind}",
            name,
            s.instr_count(),
            s.edge_count(),
            s.height(),
            s.max_width(),
            s.avg_parallelism(),
            s.critical_fraction() * 100.0,
            s.preplaced_fraction() * 100.0,
        );
    }
}
