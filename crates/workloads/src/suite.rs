//! The paper's benchmark suites.

use convergent_ir::{ClusterId, DagBuilder, Instruction, SchedulingUnit};

use crate::{
    cholesky, fir, fpppp_kernel, jacobi, life, mxm, rbsorf, sha, swim, tomcatv, vpenta, vvmul, yuv,
    CholeskyParams, FirParams, FppppParams, MxmParams, ShaParams, StencilParams, VpentaParams,
    VvmulParams, YuvParams,
};

/// The Raw evaluation suite (Table 2 / Figures 6 and 7): cholesky,
/// tomcatv, vpenta, mxm, fpppp-kernel, sha, swim, jacobi, life —
/// banked for an `n_tiles`-tile machine.
///
/// "For dense matrix loops, the congruence pass usually unrolls the
/// loops by the number of clusters or tiles", so the generators take
/// the tile count as their unroll/banking factor. fpppp-kernel and
/// sha carry no preplacement and do not scale with the tile count.
#[must_use]
pub fn raw_suite(n_tiles: u16) -> Vec<SchedulingUnit> {
    vec![
        cholesky(CholeskyParams::for_banks(n_tiles)),
        tomcatv(StencilParams::for_banks(n_tiles)),
        vpenta(VpentaParams::for_banks(n_tiles)),
        mxm(MxmParams::for_banks(n_tiles)),
        fpppp_kernel(FppppParams::small()),
        sha(ShaParams::small()),
        swim(StencilParams::for_banks(n_tiles)),
        jacobi(StencilParams::for_banks(n_tiles)),
        life(StencilParams::for_banks(n_tiles)),
    ]
}

/// The clustered-VLIW evaluation suite (Figures 8 and 9): vvmul,
/// rbsorf, yuv, tomcatv, mxm, fir, cholesky — banked for an
/// `n_clusters`-cluster machine.
#[must_use]
pub fn vliw_suite(n_clusters: u16) -> Vec<SchedulingUnit> {
    vec![
        vvmul(VvmulParams::for_banks(n_clusters)),
        rbsorf(StencilParams::for_banks(n_clusters)),
        yuv(YuvParams::for_banks(n_clusters)),
        tomcatv(StencilParams::for_banks(n_clusters)),
        mxm(MxmParams::for_banks(n_clusters)),
        fir(FirParams::for_banks(n_clusters)),
        cholesky(CholeskyParams::for_banks(n_clusters)),
    ]
}

/// Re-interleaves a unit's preplacements for a machine with `n_banks`
/// clusters by taking each home modulo `n_banks` — the graph (and so
/// the total work) is unchanged.
///
/// Speedup baselines need this: the paper reports "speedup relative to
/// performance on one tile", meaning the *same* unrolled program run
/// on a single tile, where every bank folds onto the one memory.
///
/// # Panics
///
/// Panics if `n_banks` is zero.
#[must_use]
pub fn rebank(unit: &SchedulingUnit, n_banks: u16) -> SchedulingUnit {
    assert!(n_banks > 0, "need at least one bank");
    let dag = unit.dag();
    let mut b = DagBuilder::with_capacity(dag.len());
    for instr in dag.instrs() {
        let mut new = match instr.preplacement() {
            Some(h) => Instruction::preplaced(instr.opcode(), ClusterId::new(h.raw() % n_banks)),
            None => Instruction::new(instr.opcode()),
        };
        if let Some(name) = instr.name() {
            new = new.with_name(name);
        }
        b.push(new);
    }
    for e in dag.edges() {
        b.edge(e.src, e.dst)
            .expect("copying edges of a valid graph");
    }
    SchedulingUnit::new(unit.name(), b.build().expect("copy of a valid graph"))
        .with_kind(unit.kind())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_suite_matches_table_2_roster() {
        let names: Vec<String> = raw_suite(4).iter().map(|u| u.name().to_string()).collect();
        assert_eq!(
            names,
            [
                "cholesky",
                "tomcatv",
                "vpenta",
                "mxm",
                "fpppp-kernel",
                "sha",
                "swim",
                "jacobi",
                "life"
            ]
        );
    }

    #[test]
    fn vliw_suite_matches_figure_8_roster() {
        let names: Vec<String> = vliw_suite(4).iter().map(|u| u.name().to_string()).collect();
        assert_eq!(
            names,
            ["vvmul", "rbsorf", "yuv", "tomcatv", "mxm", "fir", "cholesky"]
        );
    }

    #[test]
    fn suites_have_reasonable_sizes() {
        for unit in raw_suite(16).iter().chain(vliw_suite(4).iter()) {
            assert!(
                unit.dag().len() >= 50,
                "{} too small: {}",
                unit.name(),
                unit.dag().len()
            );
            assert!(
                unit.dag().len() <= 5000,
                "{} too big: {}",
                unit.name(),
                unit.dag().len()
            );
        }
    }

    #[test]
    fn rebank_folds_homes_and_preserves_structure() {
        let unit = mxm(MxmParams::for_banks(4));
        let folded = rebank(&unit, 1);
        assert_eq!(folded.dag().len(), unit.dag().len());
        assert_eq!(folded.dag().edge_count(), unit.dag().edge_count());
        for i in folded.dag().preplaced() {
            assert_eq!(
                folded.dag().instr(i).preplacement(),
                Some(convergent_ir::ClusterId::new(0))
            );
        }
        assert_eq!(folded.dag().preplaced_count(), unit.dag().preplaced_count());
    }

    #[test]
    fn preplacement_homes_fit_the_machine() {
        for tiles in [2u16, 4, 8, 16] {
            for unit in raw_suite(tiles) {
                for i in unit.dag().preplaced() {
                    let home = unit.dag().instr(i).preplacement().unwrap();
                    assert!(
                        home.index() < tiles as usize,
                        "{}: {home} out of range for {tiles} tiles",
                        unit.name()
                    );
                }
            }
        }
    }
}
