//! The linter proper: structural, timing, placement, coverage, and
//! machine-model checks.

use std::collections::BTreeMap;

use convergent_ir::{Dag, InstrId, OpClass, RawUnit, SchedulingUnit};
use convergent_machine::Machine;

use crate::{Code, Diagnostic, GraphFacts, LintReport, Severity};

/// Knobs for a lint run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LintOptions {
    /// Also run the advisory (note-severity) analyses: dead values
    /// (`CS030`), register-pressure lower bounds (`CS031`), and
    /// comm-tight preplaced pairs (`CS013`). Off by default — these
    /// fire on legitimate synthetic workloads and are informational.
    pub pedantic: bool,
    /// The region-size target the scheduler will actually run with
    /// (`csched --region-size`). The shardability analyses (`CS041`)
    /// judge cuts against this target; `None` uses
    /// [`convergent_ir::DEFAULT_REGION_SIZE`], matching the
    /// scheduler's own default.
    pub region_size: Option<usize>,
}

impl LintOptions {
    /// Options with the advisory analyses enabled.
    #[must_use]
    pub fn pedantic() -> Self {
        LintOptions {
            pedantic: true,
            ..LintOptions::default()
        }
    }

    /// Sets the region-size target the shardability analyses assume.
    #[must_use]
    pub fn with_region_size(mut self, region_size: usize) -> Self {
        self.region_size = Some(region_size);
        self
    }
}

/// Lints a parsed-but-unvalidated unit.
///
/// Structural problems ([`Code::EmptyGraph`], [`Code::DanglingEdge`],
/// [`Code::SelfEdge`], [`Code::DuplicateEdge`], [`Code::Cycle`] with a
/// witness path) are reported first; when none are found the unit is
/// built and the full [`lint_dag`] analysis runs on it too, so a
/// structurally clean report covers everything `lint_dag` covers.
#[must_use]
pub fn lint_raw(raw: &RawUnit, machine: &Machine, opts: LintOptions) -> LintReport {
    let mut report = LintReport::new();
    let n = raw.instrs().len();
    if n == 0 {
        report.push(Diagnostic::new(
            Code::EmptyGraph,
            vec![],
            "scheduling unit has no instructions",
        ));
        return report;
    }
    let mut in_range_edges: Vec<(u32, u32)> = Vec::with_capacity(raw.edges().len());
    let mut seen = std::collections::HashSet::new();
    for (k, &(src, dst)) in raw.edges().iter().enumerate() {
        let line = raw.edge_lines().get(k).copied().unwrap_or(0);
        if src as usize >= n || dst as usize >= n {
            report.push(
                Diagnostic::new(
                    Code::DanglingEdge,
                    vec![],
                    format!(
                        "edge {src} -> {dst} references a nonexistent instruction (unit has {n})"
                    ),
                )
                .with_witness(format!("line {line}")),
            );
            continue;
        }
        if src == dst {
            report.push(Diagnostic::new(
                Code::SelfEdge,
                vec![InstrId::new(src)],
                format!("instruction i{src} depends on itself"),
            ));
            continue;
        }
        if !seen.insert((src, dst)) {
            report.push(Diagnostic::new(
                Code::DuplicateEdge,
                vec![InstrId::new(src), InstrId::new(dst)],
                format!("duplicate edge i{src} -> i{dst}"),
            ));
            continue;
        }
        in_range_edges.push((src, dst));
    }
    if let Some(cycle) = find_cycle(n, &in_range_edges) {
        let witness: Vec<String> = cycle.iter().map(|i| format!("i{i}")).collect();
        report.push(
            Diagnostic::new(
                Code::Cycle,
                cycle.iter().map(|&i| InstrId::new(i)).collect(),
                format!("dependence cycle through {} instructions", cycle.len() - 1),
            )
            .with_witness(witness.join(" -> ")),
        );
    }
    if report.is_empty() {
        match raw.build() {
            Ok(unit) => report.merge(lint_dag(unit.dag(), machine, opts)),
            // Unreachable when the structural checks above pass, but
            // never panic from a linter.
            Err(e) => report.push(Diagnostic::new(
                Code::Cycle,
                vec![],
                format!("unit failed validation: {e}"),
            )),
        }
    }
    report
}

/// Finds a directed cycle among `edges` over `n` nodes, returning a
/// closed witness path (first node repeated at the end), or `None` if
/// the graph is acyclic. Iterative DFS with tricolor marking.
fn find_cycle(n: usize, edges: &[(u32, u32)]) -> Option<Vec<u32>> {
    let mut succs = vec![Vec::new(); n];
    for &(src, dst) in edges {
        succs[src as usize].push(dst);
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Stack of (node, next-successor index); `path` mirrors it.
        let mut stack = vec![(start as u32, 0usize)];
        color[start] = 1;
        let mut path = vec![start as u32];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&s) = succs[node as usize].get(*next) {
                *next += 1;
                match color[s as usize] {
                    0 => {
                        color[s as usize] = 1;
                        stack.push((s, 0));
                        path.push(s);
                    }
                    1 => {
                        // Found a back edge: the cycle is the path
                        // suffix from `s`, closed with `s` itself.
                        let pos = path.iter().position(|&p| p == s).unwrap();
                        let mut cycle: Vec<u32> = path[pos..].to_vec();
                        cycle.push(s);
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[node as usize] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Lints a validated DAG against a machine model.
///
/// Covers feasible windows (`CS010`), preplacement (`CS011`/`CS012`),
/// op-class coverage (`CS020`), communication pseudo-ops (`CS021`),
/// latency-table consistency (`CS050`/`CS051`), and — under
/// [`LintOptions::pedantic`] — dead values, register pressure, and
/// comm-tight preplaced pairs.
#[must_use]
pub fn lint_dag(dag: &Dag, machine: &Machine, opts: LintOptions) -> LintReport {
    let mut report = LintReport::new();
    if dag.is_empty() {
        report.push(Diagnostic::new(
            Code::EmptyGraph,
            vec![],
            "scheduling unit has no instructions",
        ));
        return report;
    }

    let n_clusters = machine.n_clusters();
    let hard = machine.memory().preplacement_is_hard();
    let mut uncoverable: BTreeMap<OpClass, Vec<InstrId>> = BTreeMap::new();
    let mut comm_ops: Vec<InstrId> = Vec::new();
    for i in dag.ids() {
        let instr = dag.instr(i);
        let class = instr.class();
        if instr.opcode().is_communication() {
            comm_ops.push(i);
        }
        if !machine
            .cluster_ids()
            .any(|c| machine.cluster_can_execute(c, class))
        {
            uncoverable.entry(class).or_default().push(i);
        }
        if let Some(home) = instr.preplacement() {
            if home.index() >= n_clusters {
                report.push(Diagnostic::new(
                    Code::BadHomeCluster,
                    vec![i],
                    format!(
                        "{i} ({instr}) is preplaced on {home}, but the machine has only {n_clusters} clusters"
                    ),
                ));
            } else if !machine.cluster_can_execute(home, class) {
                let severity = if hard {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                report.push(
                    Diagnostic::new(
                        Code::IncapableHome,
                        vec![i],
                        format!(
                            "{i} ({instr}) is preplaced on {home}, which cannot execute {class} operations"
                        ),
                    )
                    .with_severity(severity),
                );
            }
        }
    }
    for (class, instrs) in uncoverable {
        let shown = preview(&instrs);
        report.push(Diagnostic::new(
            Code::UncoverableClass,
            instrs,
            format!(
                "no cluster on `{}` can execute {class} operations ({shown})",
                machine.name()
            ),
        ));
    }
    if !comm_ops.is_empty() {
        let shown = preview(&comm_ops);
        report.push(Diagnostic::new(
            Code::CommOpInInput,
            comm_ops,
            format!("input graph contains scheduler-inserted communication pseudo-ops ({shown})"),
        ));
    }

    let facts = GraphFacts::compute(dag, machine);
    let overflows = facts.overflows();
    if !overflows.is_empty() {
        let first = overflows[0];
        let shown = preview(&overflows);
        report.push(
            Diagnostic::new(
                Code::InfeasibleWindow,
                overflows.clone(),
                format!(
                    "{} instruction(s) have infeasible windows: completion time exceeds u32 cycle arithmetic ({shown})",
                    overflows.len()
                ),
            )
            .with_witness(format!(
                "{first} starts no earlier than cycle {} with latency {}",
                facts.earliest_start(first),
                facts.latency(first)
            )),
        );
    }

    lint_latency_table(dag, machine, &mut report);

    if opts.pedantic {
        lint_pedantic(dag, machine, &facts, opts, &mut report);
    }
    report
}

/// Latency-table and comm-model consistency checks (`CS050`, `CS051`,
/// `CS052`).
fn lint_latency_table(dag: &Dag, machine: &Machine, report: &mut LintReport) {
    let mut zero: BTreeMap<OpClass, Vec<InstrId>> = BTreeMap::new();
    for i in dag.ids() {
        let class = dag.instr(i).class();
        if !dag.instr(i).opcode().is_communication() && machine.latencies().get(class) == 0 {
            zero.entry(class).or_default().push(i);
        }
    }
    for (class, instrs) in zero {
        let shown = preview(&instrs);
        report.push(Diagnostic::new(
            Code::ZeroLatency,
            instrs,
            format!(
                "latency table reports 0 cycles for {class}, so its results would be ready the cycle they issue ({shown})"
            ),
        ));
    }
    if machine.comm().register_mapped {
        let send = machine.latencies().get(OpClass::Send);
        let recv = machine.latencies().get(OpClass::Recv);
        if send != 0 || recv != 0 {
            report.push(Diagnostic::new(
                Code::CommLatencyMismatch,
                vec![],
                format!(
                    "`{}` is register-mapped (network occupancy is free) but the latency table charges Send={send}, Recv={recv} cycles",
                    machine.name()
                ),
            ));
        }
    } else if machine.n_clusters() > 1 {
        // Copy-based comms occupy an issue slot, so every cluster must
        // be able to source a transfer; the schedulers report this at
        // comm-insertion time (`NoTransferUnit`), the linter up front.
        for c in machine.cluster_ids() {
            if !machine.cluster_can_execute(c, OpClass::Copy) {
                report.push(Diagnostic::new(
                    Code::MissingTransferUnit,
                    vec![],
                    format!(
                        "cluster {c} of `{}` has no copy-capable unit; it can never source a cross-cluster transfer on a copy-based comm model",
                        machine.name()
                    ),
                ));
            }
        }
    }
}

/// Advisory analyses (`CS013`, `CS030`, `CS031`, `CS040`, `CS041`).
fn lint_pedantic(
    dag: &Dag,
    machine: &Machine,
    facts: &GraphFacts,
    opts: LintOptions,
    report: &mut LintReport,
) {
    if machine.memory().preplacement_is_hard() {
        for edge in dag.edges() {
            let (a, b) = (edge.src, edge.dst);
            let (ha, hb) = match (dag.instr(a).preplacement(), dag.instr(b).preplacement()) {
                (Some(ha), Some(hb)) if ha != hb => (ha, hb),
                _ => continue,
            };
            if ha.index() >= machine.n_clusters() || hb.index() >= machine.n_clusters() {
                continue;
            }
            let comm = u64::from(machine.comm_latency(ha, hb));
            let slack = facts.latest_start(b) - (facts.earliest_start(a) + facts.latency(a));
            if comm > slack {
                report.push(Diagnostic::new(
                    Code::TightPreplacedPair,
                    vec![a, b],
                    format!(
                        "{a}@{ha} -> {b}@{hb} needs {comm} cycles of communication but the edge has only {slack} cycles of slack; the nominal critical path will stretch"
                    ),
                ));
            }
        }
    }
    let dead = GraphFacts::dead_values(dag);
    if !dead.is_empty() {
        let shown = preview(&dead);
        report.push(Diagnostic::new(
            Code::DeadValue,
            dead,
            format!("side-effect-free instruction(s) with no consumers ({shown})"),
        ));
    }
    let pressure = GraphFacts::pressure_lower_bound(dag);
    let total_regs = machine.registers_per_cluster() as usize * machine.n_clusters();
    if pressure > total_regs {
        report.push(Diagnostic::new(
            Code::PressureOverRegisters,
            vec![],
            format!(
                "register-pressure lower bound {pressure} exceeds the machine's {total_regs} registers; spills are inevitable"
            ),
        ));
    }
    // Degenerate component structure (CS040): more than one
    // weakly-connected component, but one giant piece dominates —
    // mirrors the decomposer's 3/4 giant threshold, where region
    // sharding falls back to articulation cuts to make progress.
    let components = convergent_ir::weakly_connected_components(dag);
    if components.len() > 1 {
        let giant = components.iter().map(Vec::len).max().unwrap_or(0);
        if giant * 4 > dag.len() * 3 {
            report.push(Diagnostic::new(
                Code::DegenerateShardStructure,
                vec![],
                format!(
                    "graph splits into {} weakly-connected components but the largest holds {giant} of {} instructions; region sharding cannot balance these pieces without cutting the giant component",
                    components.len(),
                    dag.len()
                ),
            ));
        }
    }
    // Degenerate region cut (CS041): the graph exceeds the effective
    // region-size target (the `--region-size` override when given,
    // the scheduler default otherwise), so a sharded run would try to
    // cut it — but the best decomposition is one the driver's cut
    // governor rejects (mirrored here because `convergent-analysis`
    // cannot depend on the scheduler crate): more than half of all
    // edges crossing shards, or the largest shard still above 15/16
    // of the graph. Such a run silently falls back to a monolithic
    // schedule.
    let mut policy = convergent_ir::RegionPolicy::new(2);
    if let Some(rs) = opts.region_size {
        policy = policy.with_region_size(rs);
    }
    let target = policy.target_region_size();
    if dag.len() > target {
        let dec = convergent_ir::decompose_with(dag, &policy);
        let cross = dec.cross_edges().len();
        let total = dag.edge_count();
        let largest = dec
            .shards()
            .iter()
            .map(convergent_ir::Shard::len)
            .max()
            .unwrap_or(dag.len());
        let rejected = if dec.is_trivial() {
            true
        } else if cross == 0 {
            false
        } else {
            cross * 2 > total || largest * 16 > dag.len() * 15
        };
        if rejected {
            report.push(Diagnostic::new(
                Code::DegenerateRegionCut,
                vec![],
                format!(
                    "graph holds {} instructions (region target {target}) but its best cut is degenerate ({cross} of {total} edges crossing, largest region {largest}); sharded runs will fall back to a monolithic schedule",
                    dag.len(),
                ),
            ));
        }
    }
}

/// Lints a validated scheduling unit (convenience over [`lint_dag`]).
#[must_use]
pub fn lint_unit(unit: &SchedulingUnit, machine: &Machine, opts: LintOptions) -> LintReport {
    lint_dag(unit.dag(), machine, opts)
}

/// Short human preview of an instruction list: "i0, i1, i2, ... (+7 more)".
fn preview(instrs: &[InstrId]) -> String {
    const SHOW: usize = 4;
    let mut parts: Vec<String> = instrs.iter().take(SHOW).map(|i| i.to_string()).collect();
    if instrs.len() > SHOW {
        parts.push(format!("+{} more", instrs.len() - SHOW));
    }
    parts.join(", ")
}
