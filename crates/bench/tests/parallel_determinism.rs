//! The parallel harness contract, end to end: running real experiment
//! cells (full convergent schedules with fixed seeds) through
//! `run_cells` must produce bit-identical results for every job count.

use convergent_bench::parallel::{run_cells, run_indexed};
use convergent_bench::speedup;
use convergent_core::ConvergentScheduler;
use convergent_ir::SchedulingUnit;
use convergent_machine::Machine;
use convergent_workloads::{jacobi, mxm, sha, MxmParams, ShaParams, StencilParams};

fn kernels() -> Vec<SchedulingUnit> {
    vec![
        mxm(MxmParams::for_banks(2)),
        jacobi(StencilParams::for_banks(2)),
        sha(ShaParams { rounds: 4 }),
    ]
}

#[test]
fn experiment_cells_are_bitwise_deterministic_across_job_counts() {
    let machine = Machine::raw(2);
    let units = kernels();
    let eval = |unit: &SchedulingUnit| {
        speedup(&ConvergentScheduler::raw_default(), unit, &machine)
            .unwrap_or_else(|e| panic!("{}: {e}", unit.name()))
    };
    let serial: Vec<u64> = run_cells(&units, 1, eval)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for jobs in [2, 3, 8] {
        let parallel: Vec<u64> = run_cells(&units, jobs, eval)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let machine = Machine::raw(2);
    let units = kernels();
    let eval = |unit: &SchedulingUnit| {
        speedup(&ConvergentScheduler::raw_default(), unit, &machine).expect("schedules")
    };
    let first: Vec<u64> = run_cells(&units, 4, eval)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let second: Vec<u64> = run_cells(&units, 4, eval)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(first, second);
}

#[test]
fn index_fanout_preserves_order_under_load() {
    // Uneven per-cell work so threads finish out of order; the result
    // vector must still be in input order.
    let out = run_indexed(64, 8, |k| {
        let mut acc = k as u64;
        for _ in 0..(64 - k) * 1000 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        (k, acc)
    });
    let serial = run_indexed(64, 1, |k| {
        let mut acc = k as u64;
        for _ in 0..(64 - k) * 1000 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        (k, acc)
    });
    assert_eq!(out, serial);
}
