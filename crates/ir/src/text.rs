//! A tiny line-based text format for scheduling units (`.cdag`).
//!
//! Dependence graphs are the interface between a compiler front end
//! and this library; the `.cdag` format lets external tools produce
//! them without linking Rust. The format is deliberately trivial:
//!
//! ```text
//! # comment
//! unit mxm
//! i lw @2        # instruction 0: a load preplaced on cluster 2
//! i fmul         # instruction 1
//! i sw @2 C[0]   # instruction 2, with a debug name
//! e 0 1          # edge: instruction 0 -> instruction 1
//! e 1 2
//! ```
//!
//! Instruction ids are implicit (the order of `i` lines). Opcode
//! mnemonics are the same MIPS-flavoured ones [`Opcode`]'s `Display`
//! prints.

use std::error::Error;
use std::fmt;

use crate::{ClusterId, DagBuilder, InstrId, Instruction, Opcode, SchedulingUnit};

/// Errors parsing the `.cdag` text format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TextError {
    /// A line did not match any directive.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An unknown opcode mnemonic.
    UnknownOpcode {
        /// 1-based line number.
        line: usize,
        /// The mnemonic.
        mnemonic: String,
    },
    /// An edge referenced a not-yet-declared instruction.
    BadEdge {
        /// 1-based line number.
        line: usize,
    },
    /// The file contained no instructions.
    Empty,
    /// The edge set is cyclic or otherwise invalid.
    Invalid(String),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::BadLine { line, content } => {
                write!(f, "line {line}: unrecognized directive '{content}'")
            }
            TextError::UnknownOpcode { line, mnemonic } => {
                write!(f, "line {line}: unknown opcode '{mnemonic}'")
            }
            TextError::BadEdge { line } => {
                write!(f, "line {line}: edge references an undeclared instruction")
            }
            TextError::Empty => write!(f, "no instructions in input"),
            TextError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl Error for TextError {}

fn opcode_from_mnemonic(s: &str) -> Option<Opcode> {
    Some(match s {
        "add" => Opcode::IntAlu,
        "sll" => Opcode::Shift,
        "and" => Opcode::Logic,
        "mul" => Opcode::IntMul,
        "div" => Opcode::IntDiv,
        "lw" => Opcode::Load,
        "sw" => Opcode::Store,
        "fadd" => Opcode::FAdd,
        "fmul" => Opcode::FMul,
        "fdiv" => Opcode::FDiv,
        "fsqrt" => Opcode::FSqrt,
        "li" => Opcode::Const,
        "br" => Opcode::Branch,
        "copy" => Opcode::Copy,
        "send" => Opcode::Send,
        "recv" => Opcode::Recv,
        _ => return None,
    })
}

/// A parsed-but-unvalidated `.cdag` document.
///
/// [`parse_raw`] stops after the syntactic layer: instructions and
/// edge pairs are collected exactly as written, *before* any of the
/// structural checks [`DagBuilder`] enforces (edge ranges, self-edges,
/// duplicates, acyclicity). This is the input static analysis wants —
/// a linter can report a cycle with a witness path or a dangling edge
/// as a structured diagnostic, where [`parse_unit`] could only return
/// an opaque error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawUnit {
    name: String,
    instrs: Vec<Instruction>,
    edges: Vec<(u32, u32)>,
    edge_lines: Vec<usize>,
}

impl RawUnit {
    /// The unit name (`"unnamed"` when the document has no `unit`
    /// directive).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions, in declaration order (implicit ids).
    #[must_use]
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// The raw `(src, dst)` edge pairs, unchecked: endpoints may be
    /// out of range, repeated, self-referential, or cyclic.
    #[must_use]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// The 1-based source line of each edge, parallel to
    /// [`RawUnit::edges`].
    #[must_use]
    pub fn edge_lines(&self) -> &[usize] {
        &self.edge_lines
    }

    /// Validates and builds the unit, applying every structural check
    /// the strict parser applies.
    ///
    /// # Errors
    ///
    /// Returns [`TextError::Empty`] for instruction-less documents,
    /// [`TextError::BadEdge`] for out-of-range endpoints, and
    /// [`TextError::Invalid`] for self-edges, duplicates, and cycles.
    pub fn build(&self) -> Result<SchedulingUnit, TextError> {
        if self.instrs.is_empty() {
            return Err(TextError::Empty);
        }
        let n = self.instrs.len() as u32;
        let mut b = DagBuilder::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            b.push(instr.clone());
        }
        for (k, &(src, dst)) in self.edges.iter().enumerate() {
            let line = self.edge_lines.get(k).copied().unwrap_or(0);
            if src >= n || dst >= n {
                return Err(TextError::BadEdge { line });
            }
            b.edge(InstrId::new(src), InstrId::new(dst))
                .map_err(|e| TextError::Invalid(e.to_string()))?;
        }
        let dag = b.build().map_err(|e| TextError::Invalid(e.to_string()))?;
        Ok(SchedulingUnit::new(self.name.clone(), dag))
    }
}

/// Parses a `.cdag` document without validating the graph structure.
///
/// Only syntactic problems are errors here (unrecognized directives,
/// unknown opcodes, non-numeric edge endpoints); everything structural
/// — empty units, dangling edges, self-edges, duplicates, cycles — is
/// preserved in the returned [`RawUnit`] for a linter to diagnose.
///
/// # Errors
///
/// Returns [`TextError::BadLine`], [`TextError::UnknownOpcode`], or
/// [`TextError::BadEdge`] (non-numeric endpoint) for syntax problems.
pub fn parse_raw(text: &str) -> Result<RawUnit, TextError> {
    let mut raw = RawUnit {
        name: String::from("unnamed"),
        instrs: Vec::new(),
        edges: Vec::new(),
        edge_lines: Vec::new(),
    };
    for (k, raw_line) in text.lines().enumerate() {
        let line = k + 1;
        let content = raw_line.trim();
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        let mut parts = content.split_whitespace();
        match parts.next() {
            Some("unit") => {
                if let Some(n) = parts.next() {
                    raw.name = n.to_string();
                }
            }
            Some("i") => {
                let mnemonic = parts.next().ok_or_else(|| TextError::BadLine {
                    line,
                    content: content.to_string(),
                })?;
                let opcode =
                    opcode_from_mnemonic(mnemonic).ok_or_else(|| TextError::UnknownOpcode {
                        line,
                        mnemonic: mnemonic.to_string(),
                    })?;
                let mut instr = Instruction::new(opcode);
                let mut rest: Vec<&str> = parts.collect();
                if let Some(first) = rest.first() {
                    if let Some(cluster) = first.strip_prefix('@') {
                        let c: u16 = cluster.parse().map_err(|_| TextError::BadLine {
                            line,
                            content: content.to_string(),
                        })?;
                        instr = Instruction::preplaced(opcode, ClusterId::new(c));
                        rest.remove(0);
                    }
                }
                if rest.first() == Some(&"#") {
                    instr = instr.with_name(rest[1..].join(" "));
                }
                raw.instrs.push(instr);
            }
            Some("e") => {
                let parse_id = |s: Option<&str>| -> Result<u32, TextError> {
                    s.and_then(|x| x.parse().ok())
                        .ok_or(TextError::BadEdge { line })
                };
                let src = parse_id(parts.next())?;
                let dst = parse_id(parts.next())?;
                raw.edges.push((src, dst));
                raw.edge_lines.push(line);
            }
            _ => {
                return Err(TextError::BadLine {
                    line,
                    content: content.to_string(),
                })
            }
        }
    }
    Ok(raw)
}

/// Serializes a scheduling unit to the `.cdag` format.
///
/// # Example
///
/// ```
/// use convergent_ir::{parse_unit, to_text, DagBuilder, Opcode, SchedulingUnit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let x = b.instr(Opcode::Load);
/// let y = b.instr(Opcode::FMul);
/// b.edge(x, y)?;
/// let unit = SchedulingUnit::new("demo", b.build()?);
///
/// let text = to_text(&unit);
/// let back = parse_unit(&text)?;
/// assert_eq!(back.name(), "demo");
/// assert_eq!(back.dag().len(), 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_text(unit: &SchedulingUnit) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "unit {}\n",
        unit.name().replace(char::is_whitespace, "_")
    ));
    for i in unit.dag().ids() {
        let instr = unit.dag().instr(i);
        out.push('i');
        out.push(' ');
        out.push_str(&instr.opcode().to_string());
        if let Some(home) = instr.preplacement() {
            out.push_str(&format!(" @{}", home.raw()));
        }
        if let Some(name) = instr.name() {
            out.push_str(&format!(" # {name}"));
        }
        out.push('\n');
    }
    for e in unit.dag().edges() {
        out.push_str(&format!("e {} {}\n", e.src.raw(), e.dst.raw()));
    }
    out
}

/// Parses a `.cdag` document into a scheduling unit.
///
/// # Errors
///
/// Returns [`TextError`] for syntax problems, unknown opcodes, edges
/// to undeclared instructions, empty inputs, and cyclic graphs.
pub fn parse_unit(text: &str) -> Result<SchedulingUnit, TextError> {
    let mut name = String::from("unnamed");
    let mut b = DagBuilder::new();
    let mut n_instrs: u32 = 0;
    for (k, raw_line) in text.lines().enumerate() {
        let line = k + 1;
        let content = raw_line.trim();
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        let mut parts = content.split_whitespace();
        match parts.next() {
            Some("unit") => {
                if let Some(n) = parts.next() {
                    name = n.to_string();
                }
            }
            Some("i") => {
                let mnemonic = parts.next().ok_or_else(|| TextError::BadLine {
                    line,
                    content: content.to_string(),
                })?;
                let opcode =
                    opcode_from_mnemonic(mnemonic).ok_or_else(|| TextError::UnknownOpcode {
                        line,
                        mnemonic: mnemonic.to_string(),
                    })?;
                let mut instr = Instruction::new(opcode);
                let mut rest: Vec<&str> = parts.collect();
                if let Some(first) = rest.first() {
                    if let Some(cluster) = first.strip_prefix('@') {
                        let c: u16 = cluster.parse().map_err(|_| TextError::BadLine {
                            line,
                            content: content.to_string(),
                        })?;
                        instr = Instruction::preplaced(opcode, ClusterId::new(c));
                        rest.remove(0);
                    }
                }
                if rest.first() == Some(&"#") {
                    instr = instr.with_name(rest[1..].join(" "));
                }
                b.push(instr);
                n_instrs += 1;
            }
            Some("e") => {
                let parse_id = |s: Option<&str>| -> Result<InstrId, TextError> {
                    let v: u32 = s
                        .and_then(|x| x.parse().ok())
                        .ok_or(TextError::BadEdge { line })?;
                    if v >= n_instrs {
                        return Err(TextError::BadEdge { line });
                    }
                    Ok(InstrId::new(v))
                };
                let src = parse_id(parts.next())?;
                let dst = parse_id(parts.next())?;
                b.edge(src, dst)
                    .map_err(|e| TextError::Invalid(e.to_string()))?;
            }
            _ => {
                return Err(TextError::BadLine {
                    line,
                    content: content.to_string(),
                })
            }
        }
    }
    if n_instrs == 0 {
        return Err(TextError::Empty);
    }
    let dag = b.build().map_err(|e| TextError::Invalid(e.to_string()))?;
    Ok(SchedulingUnit::new(name, dag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn round_trip_preserves_structure() {
        let mut b = DagBuilder::new();
        let x = b.preplaced_instr(Opcode::Load, ClusterId::new(3));
        let y = b.instr(Opcode::FMul);
        let z = b.push(Instruction::new(Opcode::Store).with_name("out[0]"));
        b.edge(x, y).unwrap();
        b.edge(y, z).unwrap();
        let unit = SchedulingUnit::new("demo", b.build().unwrap());

        let text = to_text(&unit);
        let back = parse_unit(&text).unwrap();
        assert_eq!(back.name(), "demo");
        assert_eq!(back.dag().len(), 3);
        assert_eq!(back.dag().edge_count(), 2);
        assert_eq!(back.dag().instr(x).preplacement(), Some(ClusterId::new(3)));
        assert_eq!(back.dag().instr(z).name(), Some("out[0]"));
        // Idempotent: serializing again yields the same text.
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn every_opcode_round_trips() {
        for op in [
            Opcode::IntAlu,
            Opcode::Shift,
            Opcode::Logic,
            Opcode::IntMul,
            Opcode::IntDiv,
            Opcode::Load,
            Opcode::Store,
            Opcode::FAdd,
            Opcode::FMul,
            Opcode::FDiv,
            Opcode::FSqrt,
            Opcode::Const,
            Opcode::Branch,
            Opcode::Copy,
            Opcode::Send,
            Opcode::Recv,
        ] {
            assert_eq!(opcode_from_mnemonic(&op.to_string()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\nunit t\ni add\n# middle\ni add\ne 0 1\n";
        let unit = parse_unit(text).unwrap();
        assert_eq!(unit.dag().len(), 2);
    }

    #[test]
    fn errors_are_precise() {
        assert!(matches!(parse_unit(""), Err(TextError::Empty)));
        assert!(matches!(
            parse_unit("i frobnicate\n"),
            Err(TextError::UnknownOpcode { line: 1, .. })
        ));
        assert!(matches!(
            parse_unit("i add\ne 0 5\n"),
            Err(TextError::BadEdge { line: 2 })
        ));
        assert!(matches!(
            parse_unit("bogus directive\n"),
            Err(TextError::BadLine { line: 1, .. })
        ));
        // FSqrt and FDiv share a class but not a mnemonic; cycle check
        // still applies.
        assert!(matches!(
            parse_unit("i add\ni add\ne 0 1\ne 1 0\n"),
            Err(TextError::Invalid(_))
        ));
    }
}
