//! Functional-unit kinds and the opcode classes each can execute.

use std::fmt;

use convergent_ir::OpClass;

/// A kind of functional unit within a cluster.
///
/// The Chorus VLIW cluster of the paper has one [`FuKind::IntAlu`], one
/// [`FuKind::IntAluMem`], one [`FuKind::Fpu`], and one
/// [`FuKind::Transfer`]. A Raw tile is a single-issue processor modeled
/// as one [`FuKind::Universal`] unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU: add/shift/logic/mul/div/branch.
    IntAlu,
    /// Integer ALU that can also issue loads and stores.
    IntAluMem,
    /// Floating-point unit.
    Fpu,
    /// Inter-cluster transfer unit (executes register copies).
    Transfer,
    /// Executes every operation class (a whole single-issue core).
    Universal,
}

impl FuKind {
    /// Returns `true` if this unit kind can execute operations of
    /// class `class`.
    ///
    /// Static-network [`OpClass::Send`]/[`OpClass::Recv`] are
    /// register-mapped on Raw — they piggyback on the producing or
    /// consuming instruction — so only [`FuKind::Universal`] "executes"
    /// them, and the simulator gives them zero occupancy.
    #[must_use]
    pub fn can_execute(self, class: OpClass) -> bool {
        match self {
            FuKind::Universal => true,
            FuKind::IntAlu => matches!(
                class,
                OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv | OpClass::Branch
            ),
            FuKind::IntAluMem => matches!(
                class,
                OpClass::IntAlu
                    | OpClass::IntMul
                    | OpClass::IntDiv
                    | OpClass::Branch
                    | OpClass::Load
                    | OpClass::Store
            ),
            FuKind::Fpu => matches!(class, OpClass::FAdd | OpClass::FMul | OpClass::FDiv),
            FuKind::Transfer => matches!(class, OpClass::Copy),
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::IntAlu => "int-alu",
            FuKind::IntAluMem => "int-alu/mem",
            FuKind::Fpu => "fpu",
            FuKind::Transfer => "transfer",
            FuKind::Universal => "universal",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chorus_unit_capabilities() {
        assert!(FuKind::IntAlu.can_execute(OpClass::IntAlu));
        assert!(!FuKind::IntAlu.can_execute(OpClass::Load));
        assert!(FuKind::IntAluMem.can_execute(OpClass::Load));
        assert!(FuKind::IntAluMem.can_execute(OpClass::Store));
        assert!(!FuKind::IntAluMem.can_execute(OpClass::FAdd));
        assert!(FuKind::Fpu.can_execute(OpClass::FMul));
        assert!(!FuKind::Fpu.can_execute(OpClass::IntAlu));
        assert!(FuKind::Transfer.can_execute(OpClass::Copy));
        assert!(!FuKind::Transfer.can_execute(OpClass::IntAlu));
    }

    #[test]
    fn universal_runs_everything() {
        for class in OpClass::ALL {
            assert!(FuKind::Universal.can_execute(class), "{class:?}");
        }
    }

    #[test]
    fn every_real_class_has_a_chorus_home() {
        // On a Chorus cluster, every non-network op class must map to
        // at least one of the four units.
        let cluster = [
            FuKind::IntAlu,
            FuKind::IntAluMem,
            FuKind::Fpu,
            FuKind::Transfer,
        ];
        for class in OpClass::ALL {
            if matches!(class, OpClass::Send | OpClass::Recv) {
                continue; // Raw-only pseudo-ops
            }
            assert!(
                cluster.iter().any(|fu| fu.can_execute(class)),
                "{class:?} has no executing unit"
            );
        }
    }

    #[test]
    fn display() {
        assert_eq!(FuKind::IntAluMem.to_string(), "int-alu/mem");
        assert_eq!(FuKind::Universal.to_string(), "universal");
    }
}
